let fold_lines file f init =
  if not (Sys.file_exists file) then init
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> acc
          | line -> go (f acc line)
        in
        go init)
  end

let records file =
  List.rev
    (fold_lines file
       (fun acc line ->
         match Sink.record_of_json line with
         | Some r -> r :: acc
         | None -> acc)
       [])

(* ------------------------------------------------------------------ *)
(* Store scan *)

type scan = {
  keys : (string, unit) Hashtbl.t;
  records : int;
  duplicates : int;
  malformed_mid : int;
  malformed_tail : bool;
}

let empty_scan () =
  {
    keys = Hashtbl.create 16;
    records = 0;
    duplicates = 0;
    malformed_mid = 0;
    malformed_tail = false;
  }

let scan_store file =
  let keys = Hashtbl.create 256 in
  let records = ref 0 in
  let duplicates = ref 0 in
  let malformed = ref 0 in
  let last_malformed = ref false in
  fold_lines file
    (fun () line ->
      match Sink.record_of_json line with
      | Some r ->
        incr records;
        last_malformed := false;
        if Hashtbl.mem keys r.Sink.key then incr duplicates
        else Hashtbl.replace keys r.Sink.key ()
      | None ->
        incr malformed;
        last_malformed := true)
    ();
  (* A malformed final line is the expected artifact of a crash mid-write
     (and of the newline {!Sink.create} appends on resume to terminate
     it); anything malformed before that is corruption worth surfacing. *)
  {
    keys;
    records = !records;
    duplicates = !duplicates;
    malformed_mid = (!malformed - if !last_malformed then 1 else 0);
    malformed_tail = !last_malformed;
  }

let completed_keys file = (scan_store file).keys

let pending ~completed ~key jobs =
  let skipped = ref 0 in
  let todo =
    List.filter
      (fun job ->
        if Hashtbl.mem completed (key job) then begin
          incr skipped;
          false
        end
        else true)
      jobs
  in
  (todo, !skipped)

(* ------------------------------------------------------------------ *)
(* Manifest validation *)

let validate_manifest ~manifest ~ids ~seed ~trials ~scale =
  (* Fields absent from the manifest are skipped — older stores recorded
     less; fields that are present must agree exactly, because mixing
     records from different seeds/sweeps in one store is silent data
     corruption. *)
  let mismatch field stored given =
    Error
      (Printf.sprintf
         "manifest mismatch: field %S is %s in the store's manifest.json but \
          this invocation uses %s; resume must reuse the original \
          parameters (or run without --resume to start a fresh store)"
         field stored given)
  in
  let check field given ok =
    match List.assoc_opt field manifest with
    | None -> Ok ()
    | Some stored -> if ok stored then Ok () else mismatch field stored given
  in
  let ( let* ) = Result.bind in
  let* () =
    check "schema" Sink.schema_version (fun s -> s = Sink.schema_version)
  in
  let* () = check "seed" (string_of_int seed) (fun s -> s = string_of_int seed) in
  let* () =
    check "trials" (string_of_int trials) (fun s -> s = string_of_int trials)
  in
  let* () =
    check "scale" (Printf.sprintf "%g" scale) (fun s ->
        match float_of_string_opt s with
        | Some f -> f = scale
        | None -> false)
  in
  match List.assoc_opt "experiments" manifest with
  | None -> Ok ()
  | Some stored ->
    let stored_ids = String.split_on_char ' ' stored in
    let missing = List.filter (fun id -> not (List.mem id stored_ids)) ids in
    (match missing with
    | [] -> Ok ()
    | id :: _ ->
      mismatch "experiments" stored
        (Printf.sprintf "%S (not part of the original run)" id))
