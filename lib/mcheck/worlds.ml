(* Model registry for the systematic explorer.

   [Analysis.Explore] cannot depend on [Service] (the service stack sits
   above the analysis layer in the library graph), so the lease-protocol
   world adapter and the model-name dispatch used by `repro_cli
   modelcheck` and `doctor` live here, one level up from both. *)

module Explore = Analysis.Explore
module Lease_model = Service.Lease_model

let models = [ "rebatching"; "longlived"; "lease" ]

let mutations_of_model = function
  | "rebatching" | "longlived" -> Explore.renaming_mutations
  | "lease" -> Lease_model.mutations
  | _ -> []

(* ------------------------------------------------------------------ *)
(* The lease world.  Every action is declared global (footprint -1):
   ticks move shared time, sweeps and grants touch the shared table, and
   renew/release read the clock — so no two lease actions commute and
   the DFS is exhaustive with no sleep-set reduction.  The budgets in
   [Lease_model.config] keep that affordable. *)

let lease_world (cfg : Lease_model.config) : Explore.world =
  let m = Lease_model.create cfg in
  let to_explore (a : Lease_model.action) =
    { Explore.pid = a.pid; tag = a.tag; label = a.label; footprint = -1 }
  in
  {
    Explore.w_label =
      Printf.sprintf "lease clients=%d names=%d acquires=%d ticks=%d%s"
        cfg.clients cfg.names cfg.acquires cfg.ticks
        (match cfg.mutation with None -> "" | Some mu -> " mut=" ^ mu);
    nprocs = Lease_model.nprocs m;
    enabled = (fun () -> List.map to_explore (Lease_model.enabled m));
    apply =
      (fun (a : Explore.action) ->
        Lease_model.apply m
          { Lease_model.pid = a.pid; tag = a.tag; label = a.label });
    at_end = (fun () -> Lease_model.at_end m);
    save = (fun () -> Lease_model.save m);
    reset = (fun () -> Lease_model.reset m);
  }

let lease_fixture (cfg : Lease_model.config) (v : Explore.violation) =
  {
    Explore.fx_model = "lease";
    fx_mutation = cfg.mutation;
    fx_violation = v.message;
    fx_params =
      [
        ("clients", Jsonu.Int cfg.clients);
        ("names", Jsonu.Int cfg.names);
        ("acquires", Jsonu.Int cfg.acquires);
        ("ticks", Jsonu.Int cfg.ticks);
      ];
    fx_schedule = List.map (fun (a : Explore.action) -> (a.pid, a.tag, a.label)) v.schedule;
  }

let lease_config_of_fixture (fx : Explore.fixture) =
  if fx.Explore.fx_model <> "lease" then
    Error (Printf.sprintf "fixture model %S is not lease" fx.Explore.fx_model)
  else
    try
      let p = fx.Explore.fx_params in
      Ok
        {
          Lease_model.clients = Jsonu.int_ p "clients";
          names = Jsonu.int_ p "names";
          acquires = Jsonu.int_ p "acquires";
          ticks = Jsonu.int_ p "ticks";
          mutation = fx.Explore.fx_mutation;
        }
    with Jsonu.Malformed -> Error "missing or mistyped lease fixture param"

(* ------------------------------------------------------------------ *)
(* Fixture -> world dispatch (the replayability half of the audits) *)

let world_of_fixture (fx : Explore.fixture) =
  match fx.Explore.fx_model with
  | "rebatching" | "longlived" -> Explore.renaming_world_of_fixture fx
  | "lease" -> (
    match lease_config_of_fixture fx with
    | Error e -> Error e
    | Ok cfg -> (
      match lease_world cfg with
      | w -> Ok w
      | exception Invalid_argument e -> Error e))
  | m -> Error (Printf.sprintf "unknown model %S" m)

(* Full audit for `doctor` and the test suite: schema + canonical bytes
   (via [Explore.audit_fixture]), then strict byte-replay of the
   recorded schedule, which must reproduce the recorded violation. *)
let audit_fixture_replay source =
  match Explore.audit_fixture source with
  | Error e -> Error e
  | Ok fx -> (
    match world_of_fixture fx with
    | Error e -> Error ("orphaned fixture: " ^ e)
    | Ok w -> (
      match
        Explore.replay w
          (List.map (fun (pid, tag, _) -> (pid, tag)) fx.Explore.fx_schedule)
      with
      | Error e -> Error e
      | Ok None -> Error "schedule replays clean (recorded violation gone)"
      | Ok (Some v) ->
        if v.Explore.message <> fx.Explore.fx_violation then
          Error
            (Printf.sprintf
               "replay reproduces a different violation: %S (recorded %S)"
               v.Explore.message fx.Explore.fx_violation)
        else Ok fx))
