(** Model registry for the systematic explorer.

    Adapts the models that live above the analysis layer (the
    {!Service.Lease_model} protocol model) into [Analysis.Explore]
    worlds, and dispatches counterexample fixtures to the world that can
    replay them — the glue `repro_cli modelcheck` and `doctor` share. *)

module Explore = Analysis.Explore
module Lease_model = Service.Lease_model

val models : string list
(** ["rebatching"; "longlived"; "lease"] *)

val mutations_of_model : string -> string list

val lease_world : Lease_model.config -> Explore.world
(** All lease actions are global (footprint [-1]): no two commute, so
    exploration is a full unpruned DFS — sound, and affordable under the
    model's finite budgets.
    @raise Invalid_argument on bad configs (see {!Lease_model.create}). *)

val lease_fixture : Lease_model.config -> Explore.violation -> Explore.fixture
val lease_config_of_fixture : Explore.fixture -> (Lease_model.config, string) result

val world_of_fixture : Explore.fixture -> (Explore.world, string) result
(** The model-name dispatch; [Error] marks an orphaned fixture (model or
    params no longer buildable). *)

val audit_fixture_replay : string -> (Explore.fixture, string) result
(** Full artifact audit: schema + canonical-bytes check, then strict
    replay of the recorded schedule, which must reproduce the recorded
    violation message byte-for-byte. *)
