(** Fixed-capacity vector clocks for the happens-before checker.

    Components are indexed by dense thread ids below the capacity fixed
    at creation.  Clocks are flat int arrays — every operation is
    barrier-free int loads and stores, which matters: growable clocks
    (record + pointer store on growth) throttle the multicore monitor
    to a crawl through stop-the-world GC interactions.  All clocks in
    one monitor share the same capacity; [join]/[leq] on mismatched
    capacities raise [Invalid_argument]. *)

type t

val create : cap:int -> t
(** The zero clock with components [0 .. cap-1]. *)

val cap : t -> int

val get : t -> int -> int
val set : t -> int -> int -> unit

val tick : t -> int -> unit
(** Increment one component (a thread's own epoch counter). *)

val join : t -> t -> unit
(** [join t other] sets [t] to the componentwise maximum. *)

val copy : t -> t

val leq : t -> t -> bool
(** Componentwise [<=]: does the first clock happen-before-or-equal the
    second? *)

val to_string : t -> string
