(** Happens-before certification of {!Shm.Domain_runner} executions.

    Runs the real multicore runner with its instrumentation hooks wired
    into a {!Hb} vector-clock monitor: spawn/join/latch events are
    synchronization edges, every TAS/release executes inside the
    monitor's critical section, and the result arrays' plain accesses
    are race-checked.  The outcome certifies that the witnessed
    execution was data-race free (or reports exactly which accesses
    were unordered).

    Instrumentation serializes shared-memory operations, so certified
    runs are for correctness checking; use the raw runner for timing. *)

type outcome = {
  result : Shm.Domain_runner.result;
  races : Hb.race list;  (** empty iff the execution was race-free *)
  stats : Hb.stats;
}

val hooks : Hb.t -> Shm.Domain_runner.hooks
(** The hook set wiring a runner execution into [hb].  Exposed so
    future engine substrates can reuse the same instrumentation. *)

val run :
  ?domains:int ->
  ?mode:Hb.mode ->
  seed:int ->
  procs:int ->
  capacity:int ->
  algo:(Renaming.Env.t -> int option) ->
  unit ->
  outcome
(** Instrumented {!Shm.Domain_runner.run}.  [mode] defaults to
    [Collect] so a racy execution completes and reports every race;
    pass [Raise] to fail fast inside the offending domain. *)

val certify :
  ?domains:int ->
  seed:int ->
  procs:int ->
  capacity:int ->
  algo:(Renaming.Env.t -> int option) ->
  unit ->
  (outcome, Hb.race list) result
(** [Ok] iff the witnessed execution had no data race. *)
