(* Systematic (stateless-model-checking) exploration of small
   configurations.

   The engine enumerates every schedule of a finite "world" — an
   abstract transition system offering a set of enabled actions per
   state — by depth-first search with snapshot/restore, pruned with
   Godefroid-style sleep sets.  A sleeping action is one that was
   already explored from this state and commutes with everything tried
   since, so re-exploring it can only produce a Mazurkiewicz-equivalent
   interleaving; skipping it is sound for the state-reachability
   properties we check (every reachable state is still reached by some
   explored linearization of its trace).  We deliberately do NOT cache
   visited states: sleep sets plus state caching is unsound unless the
   sleep set participates in the cache key, and the state spaces at
   n <= 4 are small enough that pure DFS finishes in seconds.

   Independence reuses the same footprint reasoning as the vector-clock
   race checker ([Hb]): two actions of different processes commute
   unless they touch the same TAS location or one of them is declared
   global.  The footprint encoding on actions:

     -2  purely process-local (commutes with every other process's action)
     -1  global (conflicts with everything)
     l>=0  touches TAS location l (conflicts with the same location)

   Violations are raised as soon as a transition (or a terminal state)
   breaks an invariant; the offending schedule is minimized by greedy
   deletion plus context-switch reduction and can be emitted as a
   canonical, byte-replayable JSON fixture. *)

type action = { pid : int; tag : int; label : string; footprint : int }

type world = {
  w_label : string;
  nprocs : int;
  enabled : unit -> action list;
      (* enabled actions, in a deterministic order *)
  apply : action -> string option;
      (* perform the action; [Some msg] = invariant violated *)
  at_end : unit -> string option;  (* terminal-state check *)
  save : unit -> unit -> unit;  (* snapshot; returns the restore thunk *)
  reset : unit -> unit;  (* back to the initial state *)
}

type stats = {
  schedules : int;  (* maximal schedules fully explored *)
  transitions : int;
  max_depth : int;
  sleep_pruned : int;  (* branches cut by sleep sets *)
  complete : bool;  (* false iff a budget stopped the search *)
}

type violation = { schedule : action list; message : string }
type outcome = { stats : stats; violation : violation option }

let independent a b =
  a.pid <> b.pid
  && (a.footprint = -2 || b.footprint = -2
     || (a.footprint >= 0 && b.footprint >= 0 && a.footprint <> b.footprint))

exception Found of action list * string
exception Budget_hit

let explore ?(sleep_sets = true) ?(max_transitions = 50_000_000)
    ?(max_schedules = max_int) (w : world) =
  let transitions = ref 0 in
  let schedules = ref 0 in
  let max_depth = ref 0 in
  let pruned = ref 0 in
  let complete = ref true in
  let sched = ref [] in
  let rec go depth sleep =
    if depth > !max_depth then max_depth := depth;
    match w.enabled () with
    | [] ->
      incr schedules;
      (match w.at_end () with
      | Some msg -> raise (Found (List.rev !sched, msg))
      | None -> if !schedules >= max_schedules then raise Budget_hit)
    | acts ->
      let avail =
        if not sleep_sets then acts
        else
          List.filter
            (fun a ->
              let asleep =
                List.exists (fun b -> b.pid = a.pid && b.tag = a.tag) sleep
              in
              if asleep then incr pruned;
              not asleep)
            acts
      in
      let explored = ref [] in
      List.iter
        (fun a ->
          incr transitions;
          if !transitions > max_transitions then raise Budget_hit;
          let restore = w.save () in
          sched := a :: !sched;
          (match w.apply a with
          | Some msg -> raise (Found (List.rev !sched, msg))
          | None ->
            let sleep' =
              if sleep_sets then
                List.filter (fun b -> independent b a) (sleep @ !explored)
              else []
            in
            go (depth + 1) sleep');
          sched := List.tl !sched;
          restore ();
          explored := a :: !explored)
        avail
  in
  w.reset ();
  let violation =
    match go 0 [] with
    | () -> None
    | exception Found (s, m) -> Some { schedule = s; message = m }
    | exception Budget_hit ->
      complete := false;
      None
  in
  {
    stats =
      {
        schedules = !schedules;
        transitions = !transitions;
        max_depth = !max_depth;
        sleep_pruned = !pruned;
        complete = !complete;
      };
    violation;
  }

(* ------------------------------------------------------------------ *)
(* Replay *)

let find_enabled w ~pid ~tag =
  List.find_opt (fun a -> a.pid = pid && a.tag = tag) (w.enabled ())

(* Strict replay: every schedule entry must be enabled in sequence.
   [Ok (Some v)] — a violation fired (mid-schedule or, for a maximal
   schedule, at the terminal check); [Ok None] — ran clean. *)
let replay (w : world) (keys : (int * int) list) =
  w.reset ();
  let rec run applied = function
    | [] ->
      if w.enabled () = [] then
        match w.at_end () with
        | Some msg -> Ok (Some { schedule = List.rev applied; message = msg })
        | None -> Ok None
      else Ok None
    | (pid, tag) :: rest -> (
      match find_enabled w ~pid ~tag with
      | None ->
        Error
          (Printf.sprintf
             "schedule not replayable: action (pid %d, tag %d) not enabled \
              at step %d"
             pid tag
             (List.length applied))
      | Some a -> (
        match w.apply a with
        | Some msg -> Ok (Some { schedule = List.rev (a :: applied); message = msg })
        | None -> run (a :: applied) rest))
  in
  run [] keys

(* Lenient replay for shrinking: skip entries that are not enabled. *)
let replay_lenient (w : world) (keys : (int * int) list) =
  w.reset ();
  let rec run applied = function
    | [] ->
      if w.enabled () = [] then
        match w.at_end () with
        | Some msg -> Some { schedule = List.rev applied; message = msg }
        | None -> None
      else None
    | (pid, tag) :: rest -> (
      match find_enabled w ~pid ~tag with
      | None -> run applied rest
      | Some a -> (
        match w.apply a with
        | Some msg -> Some { schedule = List.rev (a :: applied); message = msg }
        | None -> run (a :: applied) rest))
  in
  run [] keys

(* ------------------------------------------------------------------ *)
(* Schedule minimization: greedy drop-one-entry passes (restarting on
   every success), then adjacent-swap context-switch reduction, then one
   lenient replay to produce the canonical applied-action schedule.  Any
   violation — not necessarily the original message — keeps a candidate:
   a shrunk schedule exposing a different invariant breach is still a
   counterexample, and the final message is taken from the final replay. *)

let minimize (w : world) (v : violation) =
  let keys_of s = List.map (fun a -> (a.pid, a.tag)) s in
  let reproduces keys = replay_lenient w keys <> None in
  let rec drop_pass keys i =
    if i >= List.length keys then keys
    else
      let cand = List.filteri (fun j _ -> j <> i) keys in
      if reproduces cand then drop_pass cand 0 else drop_pass keys (i + 1)
  in
  let switches keys =
    let rec go last acc = function
      | [] -> acc
      | (pid, _) :: rest ->
        go pid (if pid = last then acc else acc + 1) rest
    in
    go (-1) (-1) keys |> max 0
  in
  let rec swap_pass keys budget =
    if budget <= 0 then keys
    else
      let rec try_swaps prefix = function
        | (a :: b :: rest : (int * int) list) when fst a <> fst b ->
          let cand = List.rev_append prefix (b :: a :: rest) in
          if switches cand < switches keys && reproduces cand then Some cand
          else try_swaps (a :: prefix) (b :: rest)
        | a :: rest -> try_swaps (a :: prefix) rest
        | [] -> None
      in
      match try_swaps [] keys with
      | Some keys' -> swap_pass keys' (budget - 1)
      | None -> keys
  in
  let keys0 = keys_of v.schedule in
  if not (reproduces keys0) then v (* defensive: keep the original *)
  else begin
    let keys = drop_pass keys0 0 in
    let keys = swap_pass keys (List.length keys * List.length keys) in
    match replay_lenient w keys with
    | Some v' -> v'
    | None -> v
  end

(* ------------------------------------------------------------------ *)
(* Counterexample fixtures: canonical JSON, byte-replayable. *)

let fixture_kind = "modelcheck-cex"
let fixture_schema = "modelcheck-cex/1"

type fixture = {
  fx_model : string;
  fx_mutation : string option;  (* seeded bug that produced this cex *)
  fx_violation : string;
  fx_params : (string * Jsonu.t) list;
  fx_schedule : (int * int * string) list;  (* pid, tag, label *)
}

let fixture_to_json fx =
  Jsonu.Obj
    [
      ("kind", Jsonu.Str fixture_kind);
      ("schema", Jsonu.Str fixture_schema);
      ("model", Jsonu.Str fx.fx_model);
      ("mutation", Jsonu.Str (Option.value fx.fx_mutation ~default:""));
      ("violation", Jsonu.Str fx.fx_violation);
      ("params", Jsonu.Obj fx.fx_params);
      ( "schedule",
        Jsonu.Arr
          (List.map
             (fun (pid, tag, label) ->
               Jsonu.Obj
                 [
                   ("pid", Jsonu.Int pid);
                   ("tag", Jsonu.Int tag);
                   ("label", Jsonu.Str label);
                 ])
             fx.fx_schedule) );
    ]

let fixture_to_string fx = Jsonu.to_string (fixture_to_json fx)

let fixture_of_json j =
  try
    let o = Jsonu.obj j in
    if Jsonu.str o "kind" <> fixture_kind then Error "kind is not modelcheck-cex"
    else if Jsonu.str o "schema" <> fixture_schema then
      Error
        (Printf.sprintf "unsupported schema %S (want %s)" (Jsonu.str o "schema")
           fixture_schema)
    else begin
      let mutation = match Jsonu.str o "mutation" with "" -> None | m -> Some m in
      let params =
        match List.assoc_opt "params" o with
        | Some (Jsonu.Obj kvs) -> kvs
        | _ -> raise Jsonu.Malformed
      in
      let schedule =
        Jsonu.arr o "schedule"
        |> List.map (fun step ->
               let s = Jsonu.obj step in
               (Jsonu.int_ s "pid", Jsonu.int_ s "tag", Jsonu.str s "label"))
      in
      Ok
        {
          fx_model = Jsonu.str o "model";
          fx_mutation = mutation;
          fx_violation = Jsonu.str o "violation";
          fx_params = params;
          fx_schedule = schedule;
        }
    end
  with Jsonu.Malformed -> Error "missing or mistyped fixture field"

let fixture_of_string source =
  match Jsonu.parse (String.trim source) with
  | None -> Error "not parseable JSON"
  | Some j -> fixture_of_json j

(* Schema + canonical-form audit (used by `repro_cli doctor`); the
   replayability half needs a world and lives with the model dispatch. *)
let audit_fixture source =
  match fixture_of_string source with
  | Error e -> Error e
  | Ok fx ->
    if fixture_to_string fx <> String.trim source then
      Error "not in canonical form (re-encode differs byte-wise)"
    else Ok fx

let violation_of_fixture fx =
  {
    schedule =
      List.map
        (fun (pid, tag, label) -> { pid; tag; label; footprint = -1 })
        fx.fx_schedule;
    message = fx.fx_violation;
  }

(* ------------------------------------------------------------------ *)
(* The renaming worlds: Fast_algo machines driven step-by-step through
   Fast_core, one-shot (rounds = 1) or long-lived (rounds > 1, with
   release actions and a Wing–Gong linearizability check on the
   acquire/release history at every terminal state). *)

type renaming_config = {
  algo : string;  (* "rebatching" *)
  procs : int;
  seed : int;
  t0 : int;
  crashes : int;  (* total crash-point budget across the run *)
  rounds : int;  (* acquires per process; > 1 = long-lived *)
  step_budget : int;  (* per-process op bound (livelock detector) *)
  mutation : string option;
}

let default_renaming =
  {
    algo = "rebatching";
    procs = 3;
    seed = 1;
    t0 = 3;
    crashes = 1;
    rounds = 1;
    step_budget = 64;
    mutation = None;
  }

let renaming_mutations = [ "claim-on-lose"; "probe-out-of-range"; "spin" ]

(* Seeded bugs, applied to pid 0's machine only so the counterexample
   stays small: claim-on-lose returns the probed name after a LOST TAS
   (uniqueness break); probe-out-of-range probes location m (namespace
   break); spin re-probes the same location forever (lock-freedom
   break). *)
let mutate_machine name ~bound (inner : Renaming.Fast_algo.t) =
  let open Renaming.Fast_algo in
  match name with
  | "claim-on-lose" ->
    {
      inner with
      label = inner.label ^ "+claim-on-lose";
      resume =
        (fun st off rng pid loc won ->
          if pid = 0 && not won then finished loc
          else inner.resume st off rng pid loc won);
    }
  | "probe-out-of-range" ->
    {
      inner with
      label = inner.label ^ "+probe-out-of-range";
      init =
        (fun st off rng pid ->
          if pid = 0 then bound else inner.init st off rng pid);
      resume =
        (fun st off rng pid loc won ->
          if pid = 0 then (if won then finished loc else finished_none)
          else inner.resume st off rng pid loc won);
    }
  | "spin" ->
    {
      inner with
      label = inner.label ^ "+spin";
      resume =
        (fun st off rng pid loc won ->
          if pid = 0 then loc else inner.resume st off rng pid loc won);
    }
  | _ -> invalid_arg ("Explore.mutate_machine: unknown mutation " ^ name)

let tag_step = 0
let tag_crash = 1
let tag_crash_win = 2
let tag_release = 3

let renaming_world ?on_terminal (cfg : renaming_config) =
  if cfg.algo <> "rebatching" then
    Error (Printf.sprintf "unknown algo %S (only rebatching is explorable)" cfg.algo)
  else if cfg.procs < 1 || cfg.procs > 6 then
    Error "procs must be in 1..6 (the state space is exponential)"
  else if cfg.rounds < 1 then Error "rounds must be >= 1"
  else begin
    (match cfg.mutation with
    | Some m when not (List.mem m renaming_mutations) ->
      invalid_arg ("Explore.renaming_world: unknown mutation " ^ m)
    | _ -> ());
    let inst = Renaming.Rebatching.make ~t0:cfg.t0 ~n:cfg.procs () in
    let bound = Renaming.Rebatching.size inst in
    let algo =
      let base = Renaming.Fast_algo.rebatching inst in
      match cfg.mutation with
      | None -> base
      | Some m -> mutate_machine m ~bound base
    in
    let core = Sim.Fast_core.create ~algo ~n:cfg.procs () in
    let crashes_used = ref 0 in
    let rounds_done = Array.make cfg.procs 0 in
    (* Linearizability history: completed + open ops, newest first.  The
       list is purely functional so a snapshot is just the list value. *)
    let history : Linz.op list ref = ref [] in
    let clock = ref 0 in
    let open_inv = Array.make cfg.procs (-1) in
    let tick () =
      let t = !clock in
      clock := t + 1;
      t
    in
    let begin_acquire pid =
      let t = tick () in
      history :=
        { Linz.pid; kind = Linz.Acquire; name = -1; inv = t; resp = max_int }
        :: !history;
      open_inv.(pid) <- t
    in
    let finish_acquire pid u =
      let t = tick () in
      history :=
        List.map
          (fun (o : Linz.op) ->
            if o.pid = pid && o.inv = open_inv.(pid) then
              { o with name = u; resp = t }
            else o)
          !history;
      open_inv.(pid) <- -1
    in
    let abort_acquire pid =
      (* a crashed process's op never responds; it can be dropped from
         the history without weakening the Linz verdict (see linz.mli) *)
      history :=
        List.filter
          (fun (o : Linz.op) -> not (o.pid = pid && o.inv = open_inv.(pid)))
          !history;
      open_inv.(pid) <- -1
    in
    let record_release pid u =
      let t = tick () in
      let t' = tick () in
      history :=
        { Linz.pid; kind = Linz.Release; name = u; inv = t; resp = t' }
        :: !history
    in
    let is_live pid =
      let rec go i =
        i < Sim.Fast_core.live_count core
        && (Sim.Fast_core.live_pid core i = pid || go (i + 1))
      in
      go 0
    in
    (* a machine may settle the moment it (re)starts; account for it *)
    let note_started pid =
      if is_live pid then begin
        begin_acquire pid;
        None
      end
      else
        match Sim.Fast_core.name_of core ~pid with
        | Some u ->
          begin_acquire pid;
          finish_acquire pid u;
          rounds_done.(pid) <- rounds_done.(pid) + 1;
          if u < 0 || u >= bound then
            Some
              (Printf.sprintf
                 "namespace bound exceeded: process %d got name %d outside \
                  [0, %d)"
                 pid u bound)
          else None
        | None ->
          Some (Printf.sprintf "process %d finished without a name" pid)
    in
    let check_finish pid =
      match Sim.Fast_core.name_of core ~pid with
      | Some u ->
        finish_acquire pid u;
        rounds_done.(pid) <- rounds_done.(pid) + 1;
        if u < 0 || u >= bound then
          Some
            (Printf.sprintf
               "namespace bound exceeded: process %d got name %d outside \
                [0, %d)"
               pid u bound)
        else begin
          let dup = ref None in
          for q = 0 to cfg.procs - 1 do
            if q <> pid && !dup = None then
              match Sim.Fast_core.name_of core ~pid:q with
              | Some v when v = u ->
                dup :=
                  Some
                    (Printf.sprintf
                       "uniqueness violated: processes %d and %d both hold \
                        name %d"
                       q pid u)
              | _ -> ()
          done;
          !dup
        end
      | None ->
        Some (Printf.sprintf "process %d finished without a name" pid)
    in
    let reset () =
      Sim.Fast_core.reset core ~seed:cfg.seed;
      Sim.Fast_core.start core;
      crashes_used := 0;
      Array.fill rounds_done 0 cfg.procs 0;
      history := [];
      clock := 0;
      Array.fill open_inv 0 cfg.procs (-1);
      for pid = 0 to cfg.procs - 1 do
        ignore (note_started pid)
      done
    in
    let save () =
      let s = Sim.Fast_core.snapshot core in
      let cu = !crashes_used in
      let rd = Array.copy rounds_done in
      let h = !history in
      let c = !clock in
      let oi = Array.copy open_inv in
      fun () ->
        Sim.Fast_core.restore core s;
        crashes_used := cu;
        Array.blit rd 0 rounds_done 0 cfg.procs;
        history := h;
        clock := c;
        Array.blit oi 0 open_inv 0 cfg.procs
    in
    let enabled () =
      let acts = ref [] in
      for pid = cfg.procs - 1 downto 0 do
        if is_live pid then begin
          let loc = Sim.Fast_core.pending_loc core ~pid in
          if
            !crashes_used < cfg.crashes
            && not (Sim.Location_space.is_taken (Sim.Fast_core.space core) loc)
          then
            acts :=
              { pid; tag = tag_crash_win; label = "crash-win"; footprint = loc }
              :: !acts;
          if !crashes_used < cfg.crashes then
            acts :=
              { pid; tag = tag_crash; label = "crash"; footprint = -2 } :: !acts;
          acts := { pid; tag = tag_step; label = "step"; footprint = loc } :: !acts
        end
        else if
          (not (Sim.Fast_core.is_crashed core ~pid))
          && Sim.Fast_core.name_of core ~pid <> None
          && rounds_done.(pid) < cfg.rounds
        then
          acts :=
            {
              pid;
              tag = tag_release;
              label = "release";
              footprint = Option.get (Sim.Fast_core.name_of core ~pid);
            }
            :: !acts
      done;
      !acts
    in
    let apply (a : action) =
      if a.tag = tag_step then begin
        Sim.Fast_core.step_pid core ~pid:a.pid;
        if is_live a.pid then
          if
            Sim.Fast_core.steps_of core ~pid:a.pid
            > cfg.step_budget * cfg.rounds
          then
            Some
              (Printf.sprintf
                 "lock-freedom violated: process %d ran %d ops without \
                  deciding (budget %d)"
                 a.pid
                 (Sim.Fast_core.steps_of core ~pid:a.pid)
                 (cfg.step_budget * cfg.rounds))
          else None
        else check_finish a.pid
      end
      else if a.tag = tag_crash then begin
        Sim.Fast_core.crash_pid core ~pid:a.pid;
        incr crashes_used;
        abort_acquire a.pid;
        None
      end
      else if a.tag = tag_crash_win then begin
        Sim.Fast_core.crash_pid_after_win core ~pid:a.pid;
        incr crashes_used;
        abort_acquire a.pid;
        None
      end
      else if a.tag = tag_release then begin
        match Sim.Fast_core.name_of core ~pid:a.pid with
        | None -> Some (Printf.sprintf "release by process %d without a name" a.pid)
        | Some u ->
          Sim.Location_space.release (Sim.Fast_core.space core) u;
          record_release a.pid u;
          Sim.Fast_core.restart_pid core ~pid:a.pid;
          note_started a.pid
      end
      else Some (Printf.sprintf "unknown action tag %d" a.tag)
    in
    let at_end () =
      (match on_terminal with
      | Some f ->
        f (Array.init cfg.procs (fun pid -> Sim.Fast_core.name_of core ~pid))
      | None -> ());
      if cfg.rounds > 1 then begin
        let ops =
          List.filter (fun (o : Linz.op) -> o.resp < max_int) !history
          |> List.sort (fun (a : Linz.op) b -> compare a.inv b.inv)
        in
        Linz.explain ~bound ops
      end
      else None
    in
    Ok
      {
        w_label =
          Printf.sprintf "%s n=%d seed=%d rounds=%d crashes<=%d%s" cfg.algo
            cfg.procs cfg.seed cfg.rounds cfg.crashes
            (match cfg.mutation with None -> "" | Some m -> " mut=" ^ m);
        nprocs = cfg.procs;
        enabled;
        apply;
        at_end;
        save;
        reset;
      }
  end

let renaming_bound cfg =
  Renaming.Rebatching.size (Renaming.Rebatching.make ~t0:cfg.t0 ~n:cfg.procs ())

(* Fixture round-trip for the renaming models. *)

let renaming_model_name cfg = if cfg.rounds > 1 then "longlived" else "rebatching"

let renaming_fixture (cfg : renaming_config) (v : violation) =
  {
    fx_model = renaming_model_name cfg;
    fx_mutation = cfg.mutation;
    fx_violation = v.message;
    fx_params =
      [
        ("procs", Jsonu.Int cfg.procs);
        ("seed", Jsonu.Int cfg.seed);
        ("t0", Jsonu.Int cfg.t0);
        ("crashes", Jsonu.Int cfg.crashes);
        ("rounds", Jsonu.Int cfg.rounds);
        ("step_budget", Jsonu.Int cfg.step_budget);
      ];
    fx_schedule = List.map (fun a -> (a.pid, a.tag, a.label)) v.schedule;
  }

let renaming_config_of_fixture fx =
  if fx.fx_model <> "rebatching" && fx.fx_model <> "longlived" then
    Error (Printf.sprintf "fixture model %S is not a renaming model" fx.fx_model)
  else
    try
      let p = fx.fx_params in
      let cfg =
        {
          algo = "rebatching";
          procs = Jsonu.int_ p "procs";
          seed = Jsonu.int_ p "seed";
          t0 = Jsonu.int_ p "t0";
          crashes = Jsonu.int_ p "crashes";
          rounds = Jsonu.int_ p "rounds";
          step_budget = Jsonu.int_ p "step_budget";
          mutation = fx.fx_mutation;
        }
      in
      if fx.fx_model = "longlived" && cfg.rounds < 2 then
        Error "longlived fixture must have rounds >= 2"
      else Ok cfg
    with Jsonu.Malformed -> Error "missing or mistyped renaming fixture param"

let renaming_world_of_fixture fx =
  match renaming_config_of_fixture fx with
  | Error e -> Error e
  | Ok cfg -> renaming_world cfg
