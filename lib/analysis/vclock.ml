(* Fixed-capacity vector clocks: one flat int array, no growth.

   The earlier design grew a [{mutable v : int array}] on demand.  That
   is pathological under multicore contention: the record indirection
   plus pointer stores into state shared across domains interact with
   the OCaml 5 minor-GC read/write barriers badly enough to force
   near-constant stop-the-world collections (observed: the monitor
   throttled to ~250 ops/s with minor and major collection counts
   advancing in lockstep).  A flat preallocated int array makes every
   clock operation barrier-free — int loads and stores only — and the
   same workload runs three orders of magnitude faster.  The price is a
   fixed thread capacity, chosen by the monitor at creation. *)

type t = int array

let create ~cap =
  if cap < 1 then invalid_arg "Vclock.create: cap must be >= 1";
  Array.make cap 0

let cap = Array.length

let check t i who =
  if i < 0 || i >= Array.length t then
    invalid_arg
      (Printf.sprintf "Vclock.%s: component %d out of capacity %d" who i
         (Array.length t))

let get t i =
  check t i "get";
  t.(i)

let set t i x =
  check t i "set";
  t.(i) <- x

let tick t i =
  check t i "tick";
  t.(i) <- t.(i) + 1

let join t o =
  if Array.length o <> Array.length t then
    invalid_arg "Vclock.join: capacity mismatch";
  for i = 0 to Array.length o - 1 do
    if o.(i) > t.(i) then t.(i) <- o.(i)
  done

let copy = Array.copy

let leq a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vclock.leq: capacity mismatch";
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) > b.(i) then ok := false
  done;
  !ok

let to_string t =
  "["
  ^ String.concat ";" (Array.to_list (Array.map string_of_int t))
  ^ "]"
