(* Certify Shm.Domain_runner executions race-free.

   The runner's instrumentation hooks are wired into a {!Hb} monitor:
   spawn/join/latch events become synchronization edges, every
   TAS/release runs inside the monitor's critical section (so the
   clock-join order is the executed order), and the result arrays'
   plain accesses are checked as plain reads/writes.  A run that
   completes with no race is a witnessed data-race-free execution of
   the real multicore substrate — certification, not assumption. *)

type outcome = {
  result : Shm.Domain_runner.result;
  races : Hb.race list;
  stats : Hb.stats;
}

let hooks hb =
  let main = Hb.register hb ~name:"main" in
  (* Worker thread ids, assigned at the spawn hook (main thread) so the
     spawn edge exists before the worker's first event. *)
  let tids : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let lock = Mutex.create () in
  let tid d =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match Hashtbl.find_opt tids d with
        | Some t -> t
        | None ->
          let t = Hb.register hb ~name:(Printf.sprintf "domain-%d" d) in
          Hashtbl.replace tids d t;
          t)
  in
  let result_cells pid =
    (Printf.sprintf "names[%d]" pid, Printf.sprintf "probes[%d]" pid)
  in
  {
    Shm.Domain_runner.tas =
      (fun ~domain ~pid:_ ~loc f ->
        Hb.atomic_op_locked hb ~thread:(tid domain)
          ~loc:(Printf.sprintf "cell[%d]" loc)
          ~sync:`Rmw f);
    release =
      (fun ~domain ~pid:_ ~loc f ->
        Hb.atomic_op_locked hb ~thread:(tid domain)
          ~loc:(Printf.sprintf "cell[%d]" loc)
          ~sync:`Release f);
    on_spawn = (fun d -> Hb.spawn hb ~parent:main ~child:(tid d));
    on_join = (fun d -> Hb.join hb ~parent:main ~child:(tid d));
    on_latch_release =
      (fun () -> Hb.atomic_op hb ~thread:main ~loc:"latch" ~sync:`Release);
    on_latch_acquire =
      (fun d -> Hb.atomic_op hb ~thread:(tid d) ~loc:"latch" ~sync:`Acquire);
    on_result_write =
      (fun ~domain ~pid ->
        let names, probes = result_cells pid in
        let thread = tid domain in
        Hb.plain_write hb ~thread ~loc:names;
        Hb.plain_write hb ~thread ~loc:probes);
    on_result_read =
      (fun ~pid ->
        let names, probes = result_cells pid in
        Hb.plain_read hb ~thread:main ~loc:names;
        Hb.plain_read hb ~thread:main ~loc:probes);
  }

let run ?domains ?(mode = Hb.Collect) ~seed ~procs ~capacity ~algo () =
  let hb = Hb.create ~mode () in
  let result =
    Shm.Domain_runner.run ?domains ~hooks:(hooks hb) ~seed ~procs ~capacity
      ~algo ()
  in
  { result; races = Hb.races hb; stats = Hb.stats hb }

let certify ?domains ~seed ~procs ~capacity ~algo () =
  let o = run ?domains ~mode:Hb.Collect ~seed ~procs ~capacity ~algo () in
  match o.races with [] -> Ok o | races -> Error races
