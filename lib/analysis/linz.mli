(** Wing–Gong linearizability checker for acquire/release histories.

    Decides whether a concurrent history of long-lived loose-renaming
    operations is linearizable against the sequential specification:
    acquire returns a name in [[0, bound)] that no process currently
    holds, release frees a name held by its caller.  The search
    linearizes minimal operations (all real-time predecessors already
    placed) with backtracking, memoized on the linearized-set bitmask —
    sound because the spec state is a function of the linearized set
    alone.

    Histories are expected from [Explore]'s long-lived worlds: completed
    operations only.  Incomplete (crashed) acquires may be dropped by
    the caller without weakening the verdict — a pending acquire only
    removes names from the free pool, so it can never be needed to
    legalize another operation of this object. *)

type kind = Acquire | Release

type op = {
  pid : int;
  kind : kind;
  name : int;
  inv : int;  (** invocation timestamp (monotonic event counter) *)
  resp : int;  (** response timestamp, [> inv] *)
}

type verdict = {
  linearization : int list option;
      (** indices into the input list, in linearization order, if one
          exists *)
  states_explored : int;
}

val max_ops : int
(** History-length cap (bitmask width), 62. *)

val check : bound:int -> op list -> (verdict, string) result
(** [Error _] only when the history exceeds {!max_ops}. *)

val explain : bound:int -> op list -> string option
(** [None] — linearizable; [Some msg] — a violation message carrying the
    full history, suitable for counterexample reports. *)
