(** Vector-clock happens-before race checker.

    The monitor witnesses one concurrent execution: threads register,
    synchronization operations (spawn/join edges, atomic operations on
    named locations) join vector clocks, and each {e plain} (non-atomic)
    access is checked against the location's recorded access epochs.
    Two conflicting plain accesses whose clocks are incomparable are a
    data race in the witnessed execution — by the DRF theorem for the
    OCaml memory model, a program whose executions are all certified
    race-free is sequentially consistent.

    Every entry point is serialized by an internal mutex, so calls can
    be made freely from concurrently running domains; the recorded event
    order is a real linearization of the run.  Use
    {!atomic_op_locked} to execute the underlying atomic operation
    inside the critical section, making the clock-join order identical
    to the hardware execution order.

    In [Raise] mode (the default) the first race raises {!Race} in the
    offending thread; in [Collect] mode races accumulate and the run
    continues. *)

type kind = Read | Write
type access = { thread : int; kind : kind }

type race = {
  loc : string;
  prior : access;
  current : access;
  prior_name : string;
  current_name : string;
}

exception Race of race

type mode = Raise | Collect
type sync = [ `Acquire | `Release | `Rmw ]

type t

val create : ?mode:mode -> ?max_threads:int -> unit -> t
(** A fresh monitor; [mode] defaults to [Raise].  [max_threads]
    (default 64) bounds how many threads can register: clocks are
    preallocated flat arrays so the concurrent hot path performs no
    pointer stores into shared records (growable clocks provoke
    stop-the-world GC storms under multicore contention). *)

val register : t -> name:string -> int
(** Register a thread and return its dense id.  [name] appears in race
    reports. *)

val thread_name : t -> int -> string

val spawn : t -> parent:int -> child:int -> unit
(** Record a spawn edge: the child inherits the parent's clock.  Call
    from the parent before the child starts running. *)

val join : t -> parent:int -> child:int -> unit
(** Record a join edge: the parent inherits the child's clock.  Call
    from the parent after the child has terminated. *)

val atomic_op : t -> thread:int -> loc:string -> sync:sync -> unit
(** Record an atomic operation on location [loc].  [`Acquire] joins the
    location's clock into the thread ([Atomic.get], a latch spin);
    [`Release] publishes the thread's clock to the location
    ([Atomic.set]); [`Rmw] does both ([Atomic.exchange],
    compare-and-set, TAS).  @raise Invalid_argument on an unregistered
    thread. *)

val atomic_op_locked :
  t -> thread:int -> loc:string -> sync:sync -> (unit -> 'a) -> 'a
(** Like {!atomic_op}, but runs [f] — the real atomic operation — inside
    the monitor's critical section, so the recorded synchronization
    order is exactly the executed order. *)

val plain_read : t -> thread:int -> loc:string -> unit
(** Record a plain (non-atomic) read and check it against the last
    unordered write.  @raise Race in [Raise] mode. *)

val plain_write : t -> thread:int -> loc:string -> unit
(** Record a plain write and check it against unordered prior reads and
    writes.  @raise Race in [Raise] mode. *)

val races : t -> race list
(** Races witnessed so far, in program order (useful in [Collect]
    mode; in [Raise] mode at most one). *)

type stats = {
  threads : int;
  atomic_locations : int;
  plain_locations : int;
  events : int;
}

val stats : t -> stats

val race_to_string : race -> string
