(** The declarative rule table behind {!Lint}.

    A rule bans a list of identifier paths within a path scope.  Adding
    a rule is one record in {!all}: give it a stable [id] (used in
    reports, [--json] output and inline allow comments), a [doc]
    sentence explaining what the rule protects, the [banned] identifier
    paths (a trailing ['.'] matches the whole module prefix, and a
    leading [Stdlib.] on the use site is stripped before matching),
    and optionally [applies_to]/[allowed] repository-relative path
    prefixes.

    Individual expressions are exempted in source with

    {v (* repro-lint: allow <rule-id> — justification *) v}

    on the line of the flagged identifier or the line above. *)

type rule = {
  id : string;
  doc : string;
  banned : string list;
      (** identifier paths; trailing ['.'] means "anything under this
          module" *)
  applies_to : string list;
      (** path prefixes the rule is restricted to; [[]] = whole tree *)
  allowed : string list;  (** path prefixes exempt from the rule *)
}

val all : rule list
(** The shipped rule set, in reporting order. *)

val find : string -> rule option
(** Look a rule up by [id]. *)

val applies : rule -> path:string -> bool
(** Does [rule] constrain the file at (normalized, repo-relative)
    [path]? *)

val matches_ident : rule -> string -> bool
(** Does the (normalized) identifier path trip this rule? *)

val path_has_prefix : prefix:string -> string -> bool
(** Component-wise path prefix test: ["lib/shm/"] and ["lib/shm"] both
    match ["lib/shm/atomic_space.ml"], but ["lib/sh"] does not. *)
