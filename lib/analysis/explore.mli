(** Systematic exploration (stateless model checking) of small
    configurations.

    Enumerates {e every} schedule of a finite transition system — a
    {!world} — by snapshot/restore depth-first search pruned with
    Godefroid-style sleep sets, checking invariants at every transition
    and terminal state.  The sampled checkers elsewhere in the tree
    (QCheck cross-substrate, chaos soaks, the [Hb] race certifier)
    certify single executions; this engine certifies the whole schedule
    space of configurations up to ~4 processes, crash points included.

    {b Soundness.} Sleep sets prune only interleavings Mazurkiewicz-
    equivalent (commutation of independent actions) to already-explored
    ones, so every reachable state is still visited; all checked
    properties are state predicates.  Independence comes from action
    {e footprints} (same reasoning as the vector-clock [Hb] checker):
    [-2] process-local, [-1] global, [l >= 0] touches TAS location [l].
    No state caching is performed — sleep sets plus state caching is
    unsound without sleep-set-aware cache keys.  [explore ~sleep_sets:
    false] runs the unpruned DFS; the test suite cross-checks the two
    verdicts and schedule counts on tiny worlds.

    Violations are minimized by greedy deletion plus context-switch
    reduction ({!minimize}) and serialized as canonical byte-replayable
    JSON fixtures ({!fixture}) consumed by [repro_cli modelcheck
    --replay] and audited by [repro_cli doctor]. *)

(** {1 Worlds} *)

type action = {
  pid : int;
  tag : int;  (** action kind, unique per (pid, state) *)
  label : string;
  footprint : int;  (** -2 local, -1 global, [l >= 0] TAS location *)
}

type world = {
  w_label : string;
  nprocs : int;
  enabled : unit -> action list;
      (** enabled actions in a deterministic order; [[]] = terminal *)
  apply : action -> string option;
      (** perform; [Some msg] reports an invariant violation *)
  at_end : unit -> string option;  (** terminal-state check *)
  save : unit -> unit -> unit;  (** snapshot; returns the restore thunk *)
  reset : unit -> unit;
}

val independent : action -> action -> bool

(** {1 Exploration} *)

type stats = {
  schedules : int;  (** maximal schedules fully explored *)
  transitions : int;
  max_depth : int;
  sleep_pruned : int;
  complete : bool;  (** [false] iff a budget stopped the search *)
}

type violation = { schedule : action list; message : string }
type outcome = { stats : stats; violation : violation option }

val explore :
  ?sleep_sets:bool ->
  ?max_transitions:int ->
  ?max_schedules:int ->
  world ->
  outcome
(** Exhaustive DFS from the initial state ([world.reset] is called
    first).  Returns on the first violation found or when the space (or
    a budget) is exhausted. *)

val replay : world -> (int * int) list -> (violation option, string) result
(** Strict replay of a [(pid, tag)] schedule: every entry must be
    enabled in sequence ([Error] otherwise).  [Ok (Some v)] — a
    violation fired during the schedule or at its terminal state. *)

val minimize : world -> violation -> violation
(** Shrink a violating schedule: greedy entry deletion, then
    context-switch reduction; the result replays to a violation (not
    necessarily the identical message — any invariant breach keeps a
    candidate). *)

(** {1 Counterexample fixtures} *)

type fixture = {
  fx_model : string;  (** "rebatching", "longlived", "lease" *)
  fx_mutation : string option;
  fx_violation : string;
  fx_params : (string * Jsonu.t) list;
  fx_schedule : (int * int * string) list;  (** pid, tag, label *)
}

val fixture_kind : string
val fixture_schema : string
(** Schema-version tag embedded in every fixture ("modelcheck-cex/1"). *)

val fixture_to_json : fixture -> Jsonu.t
val fixture_to_string : fixture -> string
(** Canonical bytes (no trailing newline): [fixture_of_string] of the
    result re-reads the fixture exactly. *)

val fixture_of_json : Jsonu.t -> (fixture, string) result
val fixture_of_string : string -> (fixture, string) result

val audit_fixture : string -> (fixture, string) result
(** Parse + schema check + canonical-form (byte re-encode) check, for
    artifact audits.  Replayability is checked separately against the
    model's world ({!replay}). *)

val violation_of_fixture : fixture -> violation

(** {1 Renaming worlds}

    {!Renaming.Fast_algo} machines driven step-granularly through
    {!Sim.Fast_core}: every interleaving of TAS steps, plus crash points
    (before-op and after-win leaks, as in [Chaos.Fault_plan]) under a
    crash budget, for one-shot ([rounds = 1]) or long-lived
    ([rounds > 1], with release actions and a {!Linz} linearizability
    check of the acquire/release history at every terminal state).
    Checked invariants: name uniqueness, the [m = (1+eps) n] namespace
    bound, lock-freedom (per-process op budget), completion, and
    linearizability. *)

type renaming_config = {
  algo : string;  (** only ["rebatching"] *)
  procs : int;
  seed : int;  (** per-pid coin streams, as in [Fast_core.reset] *)
  t0 : int;
  crashes : int;  (** total crash-point budget *)
  rounds : int;
  step_budget : int;
  mutation : string option;
}

val default_renaming : renaming_config
(** n=3, seed 1, t0=3, one crash budget, one-shot. *)

val renaming_mutations : string list
(** Seeded bugs for conviction tests: ["claim-on-lose"] (uniqueness),
    ["probe-out-of-range"] (namespace bound), ["spin"] (lock-freedom).
    All afflict pid 0 only, keeping counterexamples small. *)

val renaming_world :
  ?on_terminal:(int option array -> unit) ->
  renaming_config ->
  (world, string) result
(** [on_terminal] observes the name assignment at every maximal schedule
    (used by the sampled-vs-exhaustive cross-validation property). *)

val renaming_bound : renaming_config -> int
(** The namespace bound [m] of the explored instance. *)

val renaming_model_name : renaming_config -> string
val renaming_fixture : renaming_config -> violation -> fixture
val renaming_config_of_fixture : fixture -> (renaming_config, string) result
val renaming_world_of_fixture : fixture -> (world, string) result
