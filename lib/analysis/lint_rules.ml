(* The declarative rule table behind `repro_cli lint`.

   Each rule bans a set of identifier paths in part of the tree.  Paths
   in [banned] are matched against the fully-qualified identifier as it
   appears in the source, with a leading [Stdlib.] stripped; an entry
   ending in '.' matches every identifier under that module prefix.

   Scoping is by repository-relative path prefix: [applies_to] limits a
   rule to part of the tree ([] = everywhere), [allowed] carves out
   exemptions.  A single expression can also be exempted in place with a
   comment on the same or the preceding line:

     (* repro-lint: allow <rule-id> — justification *)

   which is the required form for one-off exceptions: the justification
   lives next to the code it excuses. *)

type rule = {
  id : string;
  doc : string;  (** what the rule protects — shown with every finding *)
  banned : string list;
  applies_to : string list;
  allowed : string list;
}

let all =
  [
    {
      id = "stdlib-random";
      doc =
        "all randomness must flow through lib/prng seed trees; \
         Stdlib.Random has hidden global state, so results would depend \
         on scheduling and --jobs";
      banned = [ "Random." ];
      applies_to = [];
      allowed = [ "lib/prng/" ];
    };
    {
      id = "wall-clock";
      doc =
        "wall-clock reads make records differ run to run; only timing \
         infrastructure (watchdog, progress, shm measurement, benches) \
         and operator-facing CLI/test timing may consult the clock";
      banned = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ];
      applies_to = [];
      allowed =
        [
          "lib/engine/watchdog.ml";
          "lib/engine/progress.ml";
          "lib/shm/";
          "bench/";
          (* bin/: elapsed-time prints for the operator; never enters a
             result record.  test/: timeout tests must time attempts. *)
          "bin/";
          "test/";
          (* The serving layer measures real latency and schedules real
             timeouts; its clock reads are the product, and nothing it
             records feeds deterministic experiment results. *)
          "lib/service/";
        ];
    };
    {
      id = "domain-spawn";
      doc =
        "domains may only be created by the audited substrates \
         (lib/shm, the engine pool); ad-hoc spawns bypass the \
         happens-before instrumentation and the watchdog";
      banned = [ "Domain.spawn" ];
      applies_to = [];
      (* service/server.ml: the daemon's serving loop owns its shard
         worker domains the same way the engine pool owns its workers;
         it joins them on every exit path. *)
      allowed = [ "lib/shm/"; "lib/engine/pool.ml"; "lib/service/server.ml" ];
    };
    {
      id = "hashtbl-iteration";
      doc =
        "Hashtbl.iter/fold order depends on hashing internals and can \
         leak into output; collect via Hashtbl.to_seq and sort, or keep \
         an explicit insertion-order list";
      banned = [ "Hashtbl.iter"; "Hashtbl.fold" ];
      applies_to = [ "lib/"; "bin/" ];
      allowed = [];
    };
    {
      id = "poly-compare";
      doc =
        "polymorphic compare on float-carrying values orders nan \
         inconsistently with IEEE and breaks silently on abstract \
         types; use Float.compare (or a typed comparator)";
      banned = [ "compare" ];
      applies_to = [ "lib/stats/" ];
      allowed = [];
    };
    {
      id = "journal-write";
      doc =
        "the crash journal's durability contract (CRC framing, one \
         guarded write per record, fsync before acknowledge) lives in \
         Service.Journal; raw Unix writes in the serving layer risk \
         bypassing it on a journal fd — route durable bytes through \
         Journal.append";
      banned =
        [
          "Unix.write";
          "Unix.single_write";
          "Unix.write_substring";
          "Unix.single_write_substring";
        ];
      applies_to = [ "lib/service/"; "bin/renamed.ml" ];
      (* journal.ml is the sanctioned implementation; socket/self-pipe
         writes elsewhere carry inline allow comments naming the fd. *)
      allowed = [ "lib/service/journal.ml" ];
    };
    {
      id = "atomic-get-set";
      doc =
        "an Atomic.get followed by Atomic.set of the same atomic inside \
         one function is a read-modify-write window that loses updates \
         under concurrency; use Atomic.compare_and_set or \
         Atomic.fetch_and_add, or mark genuinely single-writer code \
         with an inline allow comment naming the writer";
      (* structural rule: matched by the get->set pass in Lint, not by
         identifier; [banned] stays empty so the ident pass skips it *)
      banned = [];
      applies_to = [ "lib/service/"; "lib/shm/" ];
      allowed = [];
    };
    {
      id = "stdout-print";
      doc =
        "stdout is the CLI's result channel; library code printing to \
         it corrupts tables and reports — return strings or take a \
         sink, as Harness.Table does";
      banned =
        [
          "print_string";
          "print_endline";
          "print_newline";
          "print_char";
          "print_int";
          "print_float";
          "Printf.printf";
          "Format.printf";
          "Format.print_string";
          "Format.print_newline";
        ];
      applies_to = [];
      allowed = [ "bin/"; "lib/harness/table.ml"; "test/"; "examples/"; "bench/" ];
    };
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

(* [path] uses '/' separators and no leading "./" (Lint normalizes). *)
let path_has_prefix ~prefix path =
  String.equal prefix path
  || (String.length path > String.length prefix
     && String.sub path 0 (String.length prefix) = prefix
     && (prefix.[String.length prefix - 1] = '/'
        || path.[String.length prefix] = '/'))

let applies rule ~path =
  (match rule.applies_to with
  | [] -> true
  | prefixes -> List.exists (fun p -> path_has_prefix ~prefix:p path) prefixes)
  && not (List.exists (fun p -> path_has_prefix ~prefix:p path) rule.allowed)

let matches_ident rule ident =
  List.exists
    (fun banned ->
      if banned <> "" && banned.[String.length banned - 1] = '.' then
        String.length ident > String.length banned
        && String.sub ident 0 (String.length banned) = banned
      else String.equal banned ident)
    rule.banned
