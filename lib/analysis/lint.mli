(** The [repro_lint] determinism linter.

    Parses [.ml] files with the compiler's own parser (compiler-libs)
    and walks the AST with an {!Ast_iterator}, flagging every identifier
    use that trips a rule in {!Lint_rules.all}.  Because the check is on
    the parse tree, string literals and comments can never produce false
    positives, and locations are exact.

    One rule is structural rather than identifier-based:
    [atomic-get-set] flags an [Atomic.set a _] preceded, in the same
    function body, by an [Atomic.get a] on the same atomic expression
    (keyed by printed AST) — a read-modify-write window that loses
    updates under concurrency.  The finding sits on the [Atomic.set];
    the usual inline allow comment on that line exempts it.

    The lint is syntactic: module aliases ([module R = Random]) and
    [open]-ed bare names are not resolved.  It exists to make the
    accidental violation loud, not to be a type-aware escape analysis. *)

type finding = {
  file : string;  (** normalized repo-relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  rule : string;  (** {!Lint_rules.rule} id *)
  ident : string;  (** the offending identifier, [Stdlib.] stripped *)
  doc : string;  (** the rule's rationale *)
}

val lint_source : path:string -> source:string -> (finding list, string) result
(** Lint one compilation unit given as a string.  [path] (normalized,
    repo-relative) selects which rules apply.  [Error msg] on a source
    that does not parse. *)

val lint_paths :
  root:string -> paths:string list -> finding list * (string * string) list
(** Lint every [.ml] file under [paths] (files or directories;
    directories are walked in sorted order, skipping entries starting
    with ['.'] or ['_']).  Returns sorted findings and per-file parse
    errors.  [root] is stripped from file names for rule scoping. *)

val collect_ml_files : string -> string list
(** The file walk used by {!lint_paths}, exposed for tests. *)

val normalize_path : root:string -> string -> string
(** Strip [./] and a leading [root/] so rule scopes match. *)

val default_roots : string list
(** Subdirectories linted when no paths are given:
    [bin lib examples bench test]. *)

val finding_to_string : finding -> string
(** [file:line:col: [rule] ident — rationale]. *)

val json_schema : string
(** Version tag embedded in the [--json] report (["repro-lint/1"]). *)

val findings_to_json : finding list -> string
(** The [--json] report: [{"schema": ..., "findings": [...]}]. *)

val run :
  ?json:bool -> root:string -> paths:string list -> out:(string -> unit) ->
  unit -> int
(** The shared CLI driver: lint [paths] (default: {!default_roots} under
    [root]), write the report via [out], and return the exit code —
    0 clean, 1 findings, 2 usage or parse error. *)
