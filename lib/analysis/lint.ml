(* AST-level determinism lint.

   Sources are parsed with the compiler's own parser (compiler-libs), so
   anything that compiles is linted exactly as the compiler sees it —
   no regexes, no false hits inside strings or comments.  An
   Ast_iterator walks every expression; each [Pexp_ident] whose
   flattened path trips a rule in {!Lint_rules.all} (respecting the
   rule's path scope and inline allow comments) becomes a finding.

   Known limitation, by design: the lint is purely syntactic, so
   aliasing a module ([module R = Random]) or [open]ing it and using
   bare names escapes detection.  The tree does not do this for the
   banned modules, and review catches new aliases; the lint's job is to
   make the common, accidental violation loud. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  ident : string;
  doc : string;
}

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

(* ------------------------------------------------------------------ *)
(* Identifier normalization *)

(* Longident.flatten raises on functor applications; handle them as
   "no path" (a functor application cannot name a banned value). *)
let rec flatten_lident = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (p, s) -> (
    match flatten_lident p with Some l -> Some (l @ [ s ]) | None -> None)
  | Longident.Lapply _ -> None

let normalize_ident txt =
  match flatten_lident txt with
  | None -> None
  | Some parts ->
    let parts = match parts with "Stdlib" :: (_ :: _ as rest) -> rest | p -> p in
    Some (String.concat "." parts)

(* ------------------------------------------------------------------ *)
(* Inline allow comments *)

let allow_marker rule_id = "repro-lint: allow " ^ rule_id

(* The marker exempts the line it is on and the line below it, so both
   trailing comments and a comment line above the expression work. *)
let allowed_by_comment ~lines ~line rule_id =
  let marker = rule_id |> allow_marker in
  let has l =
    l >= 1
    && l <= Array.length lines
    &&
    let s = lines.(l - 1) in
    let mlen = String.length marker and slen = String.length s in
    let rec scan i =
      i + mlen <= slen && (String.sub s i mlen = marker || scan (i + 1))
    in
    scan 0
  in
  has line || has (line - 1)

(* ------------------------------------------------------------------ *)
(* Structural rule: atomic-get-set *)

(* No single identifier to ban here: the hazard is an [Atomic.get a]
   preceding an [Atomic.set a _] on the {e same} atomic within one
   function body (innermost [fun] scope) — a read-modify-write window
   that loses concurrent updates.  Atomics are keyed by the printed AST
   of the argument expression, so [t.flag] matches [t.flag] while
   [cells.(i)] and [cells.(j)] stay distinct; a get captured in an inner
   closure does not pair with a set in the enclosing function. *)

let atomic_get_set_id = "atomic-get-set"

let atomic_op = function
  | Parsetree.Pexp_apply
      ( { Parsetree.pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ },
        (Asttypes.Nolabel, arg) :: _ ) -> (
    match normalize_ident txt with
    | Some (("Atomic.get" | "Atomic.set") as op) ->
      Some (op, Format.asprintf "%a" Pprintast.expression arg)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Single-source lint *)

let lint_source ~path ~source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | exception e ->
    let msg =
      match Location.error_of_exn e with
      | Some (`Ok report) ->
        Format.asprintf "%a" Location.print_report report
      | _ -> Printexc.to_string e
    in
    Error msg
  | ast ->
    let lines = String.split_on_char '\n' source |> Array.of_list in
    let findings = ref [] in
    let check_ident txt (loc : Location.t) =
      match normalize_ident txt with
      | None -> ()
      | Some ident ->
        List.iter
          (fun rule ->
            if
              Lint_rules.applies rule ~path
              && Lint_rules.matches_ident rule ident
            then begin
              let line = loc.Location.loc_start.Lexing.pos_lnum in
              let col =
                loc.Location.loc_start.Lexing.pos_cnum
                - loc.Location.loc_start.Lexing.pos_bol
              in
              if not (allowed_by_comment ~lines ~line rule.Lint_rules.id) then
                findings :=
                  {
                    file = path;
                    line;
                    col;
                    rule = rule.Lint_rules.id;
                    ident;
                    doc = rule.Lint_rules.doc;
                  }
                  :: !findings
            end)
          Lint_rules.all
    in
    (* atomic-get-set scope machinery: a stack of per-function entry
       lists; [analyze] runs when a scope closes *)
    let ags_rule =
      match Lint_rules.find atomic_get_set_id with
      | Some r when Lint_rules.applies r ~path -> Some r
      | _ -> None
    in
    let ags_scopes : (string * string * Location.t) list ref list ref =
      ref [ ref [] ]
    in
    let ags_note op key loc =
      match !ags_scopes with
      | scope :: _ -> scope := (op, key, loc) :: !scope
      | [] -> ()
    in
    let ags_analyze entries =
      match ags_rule with
      | None -> ()
      | Some rule ->
        let first_get = Hashtbl.create 4 in
        List.iter
          (fun (op, key, (loc : Location.t)) ->
            if op = "Atomic.get" then
              let pos = loc.Location.loc_start.Lexing.pos_cnum in
              match Hashtbl.find_opt first_get key with
              | Some p when p <= pos -> ()
              | _ -> Hashtbl.replace first_get key pos)
          entries;
        List.iter
          (fun (op, key, (loc : Location.t)) ->
            if op = "Atomic.set" then
              (* the set's apply node spans the whole call, so a get
                 nested in its argument — the classic
                 [Atomic.set a (f (Atomic.get a))] — starts before the
                 set's end; a get that only follows the set does not *)
              match Hashtbl.find_opt first_get key with
              | Some gpos when gpos < loc.Location.loc_end.Lexing.pos_cnum
                ->
                let line = loc.Location.loc_start.Lexing.pos_lnum in
                let col =
                  loc.Location.loc_start.Lexing.pos_cnum
                  - loc.Location.loc_start.Lexing.pos_bol
                in
                if not (allowed_by_comment ~lines ~line rule.Lint_rules.id)
                then
                  findings :=
                    {
                      file = path;
                      line;
                      col;
                      rule = rule.Lint_rules.id;
                      ident = "Atomic.set " ^ key;
                      doc = rule.Lint_rules.doc;
                    }
                    :: !findings
              | _ -> ())
          entries
    in
    let open Ast_iterator in
    let iterator =
      {
        default_iterator with
        expr =
          (fun self e ->
            (match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_ident { txt; loc } -> check_ident txt loc
            | _ -> ());
            (if ags_rule <> None then
               match atomic_op e.Parsetree.pexp_desc with
               | Some (op, key) -> ags_note op key e.Parsetree.pexp_loc
               | None -> ());
            match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
              ags_scopes := ref [] :: !ags_scopes;
              default_iterator.expr self e;
              (match !ags_scopes with
              | scope :: rest ->
                ags_scopes := rest;
                ags_analyze (List.rev !scope)
              | [] -> ())
            | _ -> default_iterator.expr self e);
      }
    in
    iterator.structure iterator ast;
    (match !ags_scopes with
    | [ root ] -> ags_analyze (List.rev !root)
    | _ -> ());
    Ok (List.sort compare_findings !findings)

(* ------------------------------------------------------------------ *)
(* Tree walking *)

let default_roots = [ "bin"; "lib"; "examples"; "bench"; "test" ]

let rec collect_ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if entry = "" || entry.[0] = '.' || entry.[0] = '_' then []
           else collect_ml_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

(* Repo-relative normalization so rule scopes match however the file
   was named on the command line. *)
let normalize_path ~root path =
  let strip_dot p =
    if String.length p >= 2 && String.sub p 0 2 = "./" then
      String.sub p 2 (String.length p - 2)
    else p
  in
  let path = strip_dot path in
  let root = strip_dot root in
  if root = "" || root = "." then path
  else
    let rooted = if Filename.check_suffix root "/" then root else root ^ "/" in
    if
      String.length path > String.length rooted
      && String.sub path 0 (String.length rooted) = rooted
    then String.sub path (String.length rooted) (String.length path - String.length rooted)
    else path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_paths ~root ~paths =
  let files = List.concat_map collect_ml_files paths in
  List.fold_left
    (fun (findings, errors) file ->
      let rel = normalize_path ~root file in
      match lint_source ~path:rel ~source:(read_file file) with
      | Ok f -> (findings @ f, errors)
      | Error msg -> (findings, errors @ [ (rel, msg) ])
      | exception Sys_error msg -> (findings, errors @ [ (rel, msg) ]))
    ([], []) files

(* ------------------------------------------------------------------ *)
(* Reporting *)

let finding_to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s — %s" f.file f.line f.col f.rule f.ident
    f.doc

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Version tag for the --json report, so downstream consumers can detect
   format changes; bump on any incompatible reshape. *)
let json_schema = "repro-lint/1"

let findings_to_json findings =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "{\"schema\":\"%s\",\n \"findings\":[" json_schema);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf
           "\n  {\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\
            \"ident\":\"%s\",\"doc\":\"%s\"}"
           (json_escape f.file) f.line f.col (json_escape f.rule)
           (json_escape f.ident) (json_escape f.doc)))
    findings;
  if findings <> [] then Buffer.add_string b "\n ";
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* CLI driver, shared by bin/repro_lint and `repro_cli lint`.
   Exit codes: 0 clean, 1 findings, 2 usage/internal error. *)

let run ?(json = false) ~root ~paths ~out () =
  let paths =
    match paths with
    | [] ->
      List.filter Sys.file_exists
        (List.map (Filename.concat root) default_roots)
    | paths -> paths
  in
  match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some missing ->
    out (Printf.sprintf "repro_lint: no such file or directory: %s\n" missing);
    2
  | None when paths = [] ->
    out "repro_lint: nothing to lint (no default roots found)\n";
    2
  | None ->
    let findings, errors = lint_paths ~root ~paths in
    if errors <> [] then begin
      List.iter
        (fun (file, msg) -> out (Printf.sprintf "%s: parse error: %s\n" file msg))
        errors;
      2
    end
    else if json then begin
      out (findings_to_json findings);
      if findings = [] then 0 else 1
    end
    else if findings = [] then begin
      out "repro_lint: clean\n";
      0
    end
    else begin
      List.iter (fun f -> out (finding_to_string f ^ "\n")) findings;
      out
        (Printf.sprintf "repro_lint: %d violation(s) of %d rule(s)\n"
           (List.length findings)
           (List.length
              (List.sort_uniq String.compare
                 (List.map (fun f -> f.rule) findings))));
      1
    end
