(* Instrumented drop-in for Shm.Atomic_space.

   Same operations, same semantics, but every access is recorded in a
   {!Hb} monitor.  The atomic operation itself runs inside the
   monitor's critical section, so the synchronization order used for
   vector-clock joins is exactly the order the cells were really
   operated on.  Threads are identified by their domain and registered
   on first access; plain (non-atomic) shared state that travels with
   the space is checked through [read_plain]/[write_plain]. *)

type t = {
  space : Shm.Atomic_space.t;
  hb : Hb.t;
  tids : (int, int) Hashtbl.t;  (* Domain.id :> int -> monitor thread id *)
  tid_lock : Mutex.t;
}

let create ?mode ~capacity () =
  {
    space = Shm.Atomic_space.create ~capacity;
    hb = Hb.create ?mode ();
    tids = Hashtbl.create 8;
    tid_lock = Mutex.create ();
  }

let hb t = t.hb
let space t = t.space
let capacity t = Shm.Atomic_space.capacity t.space

let register_thread ?name t =
  let d = (Domain.self () :> int) in
  Mutex.lock t.tid_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.tid_lock)
    (fun () ->
      match Hashtbl.find_opt t.tids d with
      | Some tid -> tid
      | None ->
        let name =
          match name with Some n -> n | None -> Printf.sprintf "domain-%d" d
        in
        let tid = Hb.register t.hb ~name in
        Hashtbl.replace t.tids d tid;
        tid)

let tid t = register_thread t

let cell loc = Printf.sprintf "cell[%d]" loc

let tas t loc =
  let thread = tid t in
  Hb.atomic_op_locked t.hb ~thread ~loc:(cell loc) ~sync:`Rmw (fun () ->
      Shm.Atomic_space.tas t.space loc)

let release t loc =
  let thread = tid t in
  Hb.atomic_op_locked t.hb ~thread ~loc:(cell loc) ~sync:`Release (fun () ->
      Shm.Atomic_space.release t.space loc)

let is_taken t loc =
  let thread = tid t in
  Hb.atomic_op_locked t.hb ~thread ~loc:(cell loc) ~sync:`Acquire (fun () ->
      Shm.Atomic_space.is_taken t.space loc)

(* Whole-space scans are documented quiescent on Atomic_space; they are
   passed through unrecorded. *)
let taken_count t = Shm.Atomic_space.taken_count t.space
let reset t = Shm.Atomic_space.reset t.space

let read_plain t loc = Hb.plain_read t.hb ~thread:(tid t) ~loc
let write_plain t loc = Hb.plain_write t.hb ~thread:(tid t) ~loc
let races t = Hb.races t.hb
