(* Vector-clock happens-before monitor (Djit+ lineage, the discipline
   FastTrack industrializes): every thread carries a vector clock,
   synchronization edges join clocks, and each plain access is checked
   against the location's recorded access epochs.  Two conflicting plain
   accesses with incomparable clocks are a data race in the witnessed
   execution.

   All entry points lock one mutex, so the recorded event order is a
   real linearization of the monitored run; [atomic_op_locked] runs the
   actual atomic operation inside the critical section so that the
   synchronization order used for clock joins is exactly the order the
   hardware executed. *)

type kind = Read | Write

type access = { thread : int; kind : kind }

type race = {
  loc : string;
  prior : access;
  current : access;
  prior_name : string;
  current_name : string;
}

exception Race of race

type mode = Raise | Collect

type sync = [ `Acquire | `Release | `Rmw ]

(* Epochs [(thread, clock value)] rather than full clocks: access [e] at
   epoch (u, k) happens-before thread t's current event iff k <=
   C_t(u), because everything u knew at its local time k flows to t
   with u's k-th component. *)
type plain_state = {
  mutable writer : (int * int) option;
  mutable readers : (int * int) list;  (** one entry per reading thread *)
}

type t = {
  mutex : Mutex.t;
  max_threads : int;
  clocks : Vclock.t array;  (** preallocated, one per possible thread *)
  names : string array;
  mutable nthreads : int;
  atomics : (string, Vclock.t) Hashtbl.t;
  plains : (string, plain_state) Hashtbl.t;
  mutable races : race list;
  mutable events : int;
  mode : mode;
}

(* Everything the hot path touches is preallocated: clock arrays are
   flat ints and the clocks/names tables never move, so concurrent
   monitor calls perform no pointer stores into shared records (see the
   note in vclock.ml on why that matters). *)
let create ?(mode = Raise) ?(max_threads = 64) () =
  if max_threads < 1 then invalid_arg "Hb.create: max_threads must be >= 1";
  {
    mutex = Mutex.create ();
    max_threads;
    clocks = Array.init max_threads (fun _ -> Vclock.create ~cap:max_threads);
    names = Array.make max_threads "";
    nthreads = 0;
    atomics = Hashtbl.create 64;
    plains = Hashtbl.create 64;
    races = [];
    events = 0;
    mode;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let register t ~name =
  with_lock t (fun () ->
      let id = t.nthreads in
      if id >= t.max_threads then
        invalid_arg
          (Printf.sprintf "Hb.register: monitor capacity %d exhausted"
             t.max_threads);
      (* Epoch 0 is "never accessed"; every thread starts at 1. *)
      Vclock.set t.clocks.(id) id 1;
      t.names.(id) <- (if name = "" then Printf.sprintf "thread-%d" id else name);
      t.nthreads <- id + 1;
      id)

let thread_name t i =
  with_lock t (fun () ->
      if i >= 0 && i < t.nthreads then t.names.(i)
      else Printf.sprintf "thread-%d" i)

let check_thread t who i =
  if i < 0 || i >= t.nthreads then
    invalid_arg (Printf.sprintf "Hb.%s: unregistered thread %d" who i)

(* ------------------------------------------------------------------ *)
(* Synchronization edges *)

let spawn t ~parent ~child =
  with_lock t (fun () ->
      check_thread t "spawn" parent;
      check_thread t "spawn" child;
      t.events <- t.events + 1;
      Vclock.join t.clocks.(child) t.clocks.(parent);
      Vclock.tick t.clocks.(child) child;
      Vclock.tick t.clocks.(parent) parent)

let join t ~parent ~child =
  with_lock t (fun () ->
      check_thread t "join" parent;
      check_thread t "join" child;
      t.events <- t.events + 1;
      Vclock.join t.clocks.(parent) t.clocks.(child);
      Vclock.tick t.clocks.(parent) parent)

let atomic_clock t loc =
  match Hashtbl.find_opt t.atomics loc with
  | Some c -> c
  | None ->
    let c = Vclock.create ~cap:t.max_threads in
    Hashtbl.replace t.atomics loc c;
    c

let atomic_update t ~thread ~loc ~sync =
  check_thread t "atomic_op" thread;
  t.events <- t.events + 1;
  let l = atomic_clock t loc in
  let c = t.clocks.(thread) in
  (match sync with
  | `Acquire -> Vclock.join c l
  | `Release -> ()
  | `Rmw -> Vclock.join c l);
  Vclock.tick c thread;
  match sync with
  | `Acquire -> ()
  | `Release | `Rmw -> Vclock.join l c

let atomic_op t ~thread ~loc ~sync =
  with_lock t (fun () -> atomic_update t ~thread ~loc ~sync)

let atomic_op_locked t ~thread ~loc ~sync f =
  with_lock t (fun () ->
      let r = f () in
      atomic_update t ~thread ~loc ~sync;
      r)

(* ------------------------------------------------------------------ *)
(* Plain accesses *)

let plain_state t loc =
  match Hashtbl.find_opt t.plains loc with
  | Some st -> st
  | None ->
    let st = { writer = None; readers = [] } in
    Hashtbl.replace t.plains loc st;
    st

let report t ~loc ~prior ~current =
  let r =
    {
      loc;
      prior;
      current;
      prior_name = t.names.(prior.thread);
      current_name = t.names.(current.thread);
    }
  in
  t.races <- r :: t.races;
  match t.mode with Raise -> raise (Race r) | Collect -> ()

(* Epoch (u, k) is ordered before thread [thread]'s current event iff
   k <= C_thread(u); a thread is trivially ordered with itself. *)
let ordered t ~thread (u, k) =
  u = thread || k <= Vclock.get t.clocks.(thread) u

let plain_read t ~thread ~loc =
  with_lock t (fun () ->
      check_thread t "plain_read" thread;
      t.events <- t.events + 1;
      let st = plain_state t loc in
      (match st.writer with
      | Some ((u, _) as e) when not (ordered t ~thread e) ->
        report t ~loc
          ~prior:{ thread = u; kind = Write }
          ~current:{ thread; kind = Read }
      | _ -> ());
      let epoch = Vclock.get t.clocks.(thread) thread in
      st.readers <-
        (thread, epoch) :: List.filter (fun (u, _) -> u <> thread) st.readers)

let plain_write t ~thread ~loc =
  with_lock t (fun () ->
      check_thread t "plain_write" thread;
      t.events <- t.events + 1;
      let st = plain_state t loc in
      (match st.writer with
      | Some ((u, _) as e) when not (ordered t ~thread e) ->
        report t ~loc
          ~prior:{ thread = u; kind = Write }
          ~current:{ thread; kind = Write }
      | _ -> ());
      List.iter
        (fun ((u, _) as e) ->
          if not (ordered t ~thread e) then
            report t ~loc
              ~prior:{ thread = u; kind = Read }
              ~current:{ thread; kind = Write })
        st.readers;
      st.writer <- Some (thread, Vclock.get t.clocks.(thread) thread);
      st.readers <- [])

(* ------------------------------------------------------------------ *)
(* Results *)

let races t = with_lock t (fun () -> List.rev t.races)

type stats = {
  threads : int;
  atomic_locations : int;
  plain_locations : int;
  events : int;
}

let stats t =
  with_lock t (fun () ->
      {
        threads = t.nthreads;
        atomic_locations = Hashtbl.length t.atomics;
        plain_locations = Hashtbl.length t.plains;
        events = t.events;
      })

let kind_to_string = function Read -> "read" | Write -> "write"

let race_to_string r =
  Printf.sprintf
    "data race on %s: %s by %s is unordered with %s by %s" r.loc
    (kind_to_string r.prior.kind)
    r.prior_name
    (kind_to_string r.current.kind)
    r.current_name
