(** Instrumented drop-in for {!Shm.Atomic_space}.

    [tas]/[release]/[is_taken] have the same semantics as the real
    space (they operate on a genuine {!Shm.Atomic_space} underneath)
    but record every operation in a {!Hb} happens-before monitor, with
    the atomic op executed inside the monitor's critical section so the
    recorded synchronization order is the executed order.  Threads are
    keyed by {!Domain.self} and registered on first access.

    Plain (non-atomic) state that rides along with the space — result
    arrays, counters — is declared through {!read_plain} and
    {!write_plain} with a caller-chosen location label; any pair of
    unordered conflicting plain accesses raises {!Hb.Race} (default
    mode) or is collected for {!races}.

    Instrumentation serializes the monitored operations, so use this
    for certification runs, not for timing. *)

type t

val create : ?mode:Hb.mode -> capacity:int -> unit -> t
(** [mode] defaults to [Raise], as {!Hb.create}. *)

val capacity : t -> int
val tas : t -> int -> bool
val release : t -> int -> unit
val is_taken : t -> int -> bool

val taken_count : t -> int
(** Unrecorded pass-through: documented quiescent on the real space. *)

val reset : t -> unit
(** Unrecorded pass-through: documented quiescent on the real space. *)

val read_plain : t -> string -> unit
(** Record a plain read of the named location by the calling domain. *)

val write_plain : t -> string -> unit
(** Record a plain write of the named location by the calling domain. *)

val register_thread : ?name:string -> t -> int
(** Register the calling domain explicitly (otherwise it happens on
    first access, named ["domain-<id>"]). *)

val hb : t -> Hb.t
(** The underlying monitor, for adding spawn/join edges. *)

val space : t -> Shm.Atomic_space.t
(** The real space underneath (for capacity checks or post-run
    verification). *)

val races : t -> Hb.race list
