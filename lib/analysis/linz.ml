(* Wing–Gong linearizability checking for acquire/release histories.

   The sequential specification is the loose long-lived renaming object
   (Renaming.Spec with release): acquire returns a name in [0, bound)
   not currently held; release frees a name its caller holds.  A history
   is linearizable iff there is a total order of its operations that (a)
   respects real time — op A precedes op B whenever A responded before B
   was invoked — and (b) is legal for the specification.

   The search is the classic one: repeatedly linearize a minimal
   operation (one whose real-time predecessors are all already
   linearized) that the spec accepts, backtracking on dead ends.  Two
   structural facts make it fast here:

   - the spec state after linearizing a set S of operations depends only
     on S (the held map is acquires-in-S minus releases-in-S), so a
     visited-set memo on the linearized bitmask prunes re-exploration —
     the standard Wing–Gong + memoization refinement;

   - incomplete (crashed) acquires never need to be linearized: they
     only *remove* names from the free pool, so including them can never
     legalize another operation.  Callers pass completed operations
     only, and crashes simply shrink the history. *)

type kind = Acquire | Release

type op = {
  pid : int;
  kind : kind;
  name : int;
  inv : int;  (* invocation timestamp (any monotonic event counter) *)
  resp : int;  (* response timestamp; must be > inv *)
}

type verdict = {
  linearization : int list option;  (* indices into the input, in order *)
  states_explored : int;
}

let max_ops = 62 (* bitmask width *)

let check ~bound (ops : op list) =
  let a = Array.of_list ops in
  let n = Array.length a in
  if n > max_ops then
    Error (Printf.sprintf "Linz.check: history has %d ops (max %d)" n max_ops)
  else begin
    let full = (1 lsl n) - 1 in
    (* precedes.(i) = bitmask of ops that must linearize before op i *)
    let precedes =
      Array.init n (fun i ->
          let m = ref 0 in
          for j = 0 to n - 1 do
            if a.(j).resp < a.(i).inv then m := !m lor (1 lsl j)
          done;
          !m)
    in
    let seen = Hashtbl.create 1024 in
    let states = ref 0 in
    (* held: (name, pid) assoc of the spec state — tiny for the
       configurations the explorer emits *)
    let legal held (o : op) =
      match o.kind with
      | Acquire ->
        if o.name < 0 || o.name >= bound then None
        else if List.mem_assoc o.name held then None
        else Some ((o.name, o.pid) :: held)
      | Release -> (
        match List.assoc_opt o.name held with
        | Some p when p = o.pid -> Some (List.remove_assoc o.name held)
        | _ -> None)
    in
    let rec go mask held order =
      if mask = full then Some (List.rev order)
      else if Hashtbl.mem seen mask then None
      else begin
        Hashtbl.add seen mask ();
        incr states;
        let res = ref None in
        let i = ref 0 in
        while !res = None && !i < n do
          let b = 1 lsl !i in
          if mask land b = 0 && precedes.(!i) land lnot mask = 0 then begin
            match legal held a.(!i) with
            | Some held' -> res := go (mask lor b) held' (!i :: order)
            | None -> ()
          end;
          incr i
        done;
        !res
      end
    in
    let lin = if n = 0 then Some [] else go 0 [] [] in
    Ok { linearization = lin; states_explored = !states }
  end

let explain ~bound ops =
  match check ~bound ops with
  | Error e -> Some e
  | Ok { linearization = Some _; _ } -> None
  | Ok { linearization = None; _ } ->
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf
         "history of %d ops not linearizable against loose renaming with \
          bound %d:"
         (List.length ops) bound);
    List.iteri
      (fun i (o : op) ->
        Buffer.add_string buf
          (Printf.sprintf " [%d] p%d %s %d @(%d,%d)" i o.pid
             (match o.kind with Acquire -> "acq" | Release -> "rel")
             o.name o.inv o.resp))
      ops;
    Some (Buffer.contents buf)
