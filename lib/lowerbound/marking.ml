type config = { n : int; locations : int; max_layers : int }

let default_config ~n = { n; locations = 4 * n; max_layers = 64 }

type layer_stats = {
  layer : int;
  marked : int;
  rate : float;
  active_locations : int;
}

type result = { series : layer_stats array; extinct_at : int option }

(* A type with at least one marked instance. *)
type live = { mutable rate : float; mutable count : int }

type state = {
  mutable live : live list;
  mutable zero_mass : float;  (* total rate of types with no marked instance *)
  s : int;
  rng : Prng.Splitmix.t;
}

let total_marked st = List.fold_left (fun acc t -> acc + t.count) 0 st.live
let total_rate st = List.fold_left (fun acc t -> acc +. t.rate) st.zero_mass st.live

(* One layer: assign each live type a uniform location, run the marking
   procedure per location, update rates. *)
let step_layer st =
  let groups : (int, live list ref) Hashtbl.t = Hashtbl.create 64 in
  (* Occupied locations are tracked in an explicit list and visited in
     sorted order below: the per-location sampling consumes [st.rng], so
     Hashtbl iteration order would leak into the random stream and break
     seed-reproducibility across OCaml releases. *)
  let locs = ref [] in
  List.iter
    (fun t ->
      let loc = Prng.Splitmix.int st.rng st.s in
      match Hashtbl.find_opt groups loc with
      | Some l -> l := t :: !l
      | None ->
        locs := loc :: !locs;
        Hashtbl.replace groups loc (ref [ t ]))
    st.live;
  let active = Hashtbl.length groups in
  let zero_per_loc = st.zero_mass /. float_of_int st.s in
  let new_zero = ref 0. in
  (* Zero-mass at the (s - active) locations with no marked process: those
     locations' lambda is just the zero mass share. *)
  let idle_factor =
    if zero_per_loc <= 0. then 0.
    else Coupling.gamma_of zero_per_loc /. zero_per_loc
  in
  new_zero :=
    !new_zero
    +. (float_of_int (st.s - active) *. zero_per_loc *. idle_factor);
  let survivors = ref [] in
  List.iter
    (fun loc ->
      let members_ref = Hashtbl.find groups loc in
      let members = !members_ref in
      let lambda =
        List.fold_left (fun acc t -> acc +. t.rate) zero_per_loc members
      in
      let z = List.fold_left (fun acc t -> acc + t.count) 0 members in
      let y = Coupling.sample_marked st.rng ~lambda ~z in
      let factor =
        if lambda <= 0. then 0. else Coupling.gamma_of lambda /. lambda
      in
      (* Retained marks: a uniformly random permutation of the z marked
         instances keeps its last y — per type, a multivariate
         hypergeometric draw (Lemma 6.4). *)
      let instances = Array.make z 0 in
      let idx = ref 0 in
      List.iteri
        (fun ti t ->
          for _ = 1 to t.count do
            instances.(!idx) <- ti;
            incr idx
          done)
        members;
      Prng.Shuffle.shuffle_in_place st.rng instances;
      let kept = Array.make (List.length members) 0 in
      for i = z - y to z - 1 do
        kept.(instances.(i)) <- kept.(instances.(i)) + 1
      done;
      (* zero-mass share at this location is rescaled too *)
      new_zero := !new_zero +. (zero_per_loc *. factor);
      List.iteri
        (fun ti t ->
          t.rate <- t.rate *. factor;
          t.count <- kept.(ti);
          if t.count > 0 then survivors := t :: !survivors
          else new_zero := !new_zero +. t.rate)
        members)
    (List.sort Int.compare !locs);
  st.live <- !survivors;
  st.zero_mass <- !new_zero;
  active

let run ~seed config =
  if config.n < 1 then invalid_arg "Marking.run: n must be >= 1";
  if config.locations < 1 then invalid_arg "Marking.run: locations must be >= 1";
  let rng = Prng.Splitmix.of_int seed in
  let big_m = float_of_int config.n *. float_of_int config.n in
  let per_type_rate = float_of_int config.n /. (2. *. big_m) in
  let instances =
    Prng.Dist.poisson_sample rng ~lambda:(float_of_int config.n /. 2.)
  in
  let live =
    List.init instances (fun _ -> { rate = per_type_rate; count = 1 })
  in
  let zero_mass =
    (float_of_int config.n /. 2.) -. (float_of_int instances *. per_type_rate)
  in
  let st = { live; zero_mass = Float.max 0. zero_mass; s = config.locations; rng } in
  let series = ref [] in
  let extinct = ref None in
  let layer = ref 0 in
  let record active =
    series :=
      {
        layer = !layer;
        marked = total_marked st;
        rate = total_rate st;
        active_locations = active;
      }
      :: !series
  in
  record 0;
  (try
     while !layer < config.max_layers do
       if total_marked st = 0 then begin
         extinct := Some !layer;
         raise Exit
       end;
       let active = step_layer st in
       incr layer;
       record active
     done
   with Exit -> ());
  { series = Array.of_list (List.rev !series); extinct_at = !extinct }

let layers_survived result =
  match result.extinct_at with
  | Some l -> l
  | None -> Array.length result.series - 1
