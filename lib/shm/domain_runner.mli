(** Run renaming algorithms on real multicore shared memory.

    [procs] logical processes are partitioned round-robin across
    [domains] OCaml domains; each domain runs its processes to completion
    back to back against the shared {!Atomic_space}.  All domains spin on
    a start latch so the contended phase begins simultaneously.

    This substrate cannot control interleaving (the OS and the memory
    system schedule), so it is used for what it is good at: validating
    that the algorithms are correct under genuine hardware concurrency,
    and measuring wall-clock cost under contention (experiment B1).  Step
    counts are still exact — each environment counts its own TAS calls.

    Determinism caveat: with more than one domain the interleaving — and
    therefore which process wins a contended cell, the probe counts, and
    the name assignment — varies run to run; only the per-process coin
    streams are reproducible from [seed]. *)

type result = {
  names : int option array;  (** per logical process *)
  probes : int array;  (** TAS calls per logical process *)
  wall_ns : float;  (** wall-clock time of the contended phase *)
  domains_used : int;
  total_probes : int;
}

(** Instrumentation hooks, used by [Analysis.Hb_runner] to certify an
    execution race-free with a vector-clock happens-before monitor and
    by [Chaos.Chaos_runner] to inject deterministic fail-stops and
    delays.

    [tas]/[release] are middleware: they receive the real operation as
    a thunk and may bracket it (e.g. run it inside a monitor's critical
    section so the recorded synchronization order is the executed
    order), and they see which logical process [pid] is performing the
    operation — the coordinate fault plans are written in.  The [on_*]
    callbacks mark the runner's synchronization edges (spawn, join,
    start latch) and its plain result-array accesses; each runs in the
    thread performing the event.  All hooks must be safe to call from
    multiple domains. *)
type hooks = {
  tas : domain:int -> pid:int -> loc:int -> (unit -> bool) -> bool;
  release : domain:int -> pid:int -> loc:int -> (unit -> unit) -> unit;
  on_spawn : int -> unit;  (** main, before spawning worker [d] *)
  on_join : int -> unit;  (** main, after joining worker [d] *)
  on_latch_release : unit -> unit;  (** main, before opening the latch *)
  on_latch_acquire : int -> unit;  (** worker [d], after the latch opens *)
  on_result_write : domain:int -> pid:int -> unit;
      (** worker [d], before writing [names.(pid)]/[probes.(pid)] *)
  on_result_read : pid:int -> unit;
      (** main, when reading slot [pid] after all joins *)
}

val null_hooks : hooks
(** No-op hooks, a convenient base for overriding a subset. *)

val compose_hooks : hooks -> hooks -> hooks
(** [compose_hooks outer inner] layers two hook sets over one run:
    [outer]'s middleware brackets [inner]'s, which brackets the real
    operation, and every callback fires [outer]'s part first.  This is
    how the chaos injector ([outer]) and the happens-before monitor
    ([inner]) observe the same execution — an [outer] fail-stop raised
    before the thunk runs never reaches [inner], exactly as a crash
    before the operation should not. *)

val default_domains : ?procs:int -> unit -> int
(** The domain count {!run} uses when [?domains] is omitted:
    [max 2 (Domain.recommended_domain_count ())] capped at 8, and at
    [procs] when given.  Exposed so operator tooling ([repro_cli
    doctor]) can report the cap actually in effect on this host. *)

val run :
  ?domains:int ->
  ?hooks:hooks ->
  seed:int ->
  procs:int ->
  capacity:int ->
  algo:(Renaming.Env.t -> int option) ->
  unit ->
  result
(** [run ~seed ~procs ~capacity ~algo ()] executes [procs] copies of
    [algo].  [domains] defaults to
    [max 2 (Domain.recommended_domain_count ())], capped at 8 and at
    [procs].  When [hooks] is given every TAS/release goes through the
    middleware and the synchronization callbacks fire (certification
    runs); without it the hot path is untouched.
    @raise Invalid_argument if [procs < 1] or [capacity < 1]. *)

val check_unique_names : result -> bool
(** All assigned names distinct and every process got one. *)

val max_name : result -> int
(** Largest assigned name; [-1] if none. *)
