type result = {
  names : int option array;
  probes : int array;
  wall_ns : float;
  domains_used : int;
  total_probes : int;
}

type hooks = {
  tas : domain:int -> pid:int -> loc:int -> (unit -> bool) -> bool;
  release : domain:int -> pid:int -> loc:int -> (unit -> unit) -> unit;
  on_spawn : int -> unit;
  on_join : int -> unit;
  on_latch_release : unit -> unit;
  on_latch_acquire : int -> unit;
  on_result_write : domain:int -> pid:int -> unit;
  on_result_read : pid:int -> unit;
}

let null_hooks =
  {
    tas = (fun ~domain:_ ~pid:_ ~loc:_ f -> f ());
    release = (fun ~domain:_ ~pid:_ ~loc:_ f -> f ());
    on_spawn = ignore;
    on_join = ignore;
    on_latch_release = ignore;
    on_latch_acquire = ignore;
    on_result_write = (fun ~domain:_ ~pid:_ -> ());
    on_result_read = (fun ~pid:_ -> ());
  }

(* Middleware layering: [outer] brackets [inner], which brackets the
   real operation; callbacks fire outer-first.  An exception raised by
   the outer middleware before it calls the thunk (the chaos injector's
   fail-stop) therefore skips the inner layer entirely, which is what a
   crash before the operation means. *)
let compose_hooks outer inner =
  {
    tas =
      (fun ~domain ~pid ~loc f ->
        outer.tas ~domain ~pid ~loc (fun () -> inner.tas ~domain ~pid ~loc f));
    release =
      (fun ~domain ~pid ~loc f ->
        outer.release ~domain ~pid ~loc (fun () ->
            inner.release ~domain ~pid ~loc f));
    on_spawn =
      (fun d ->
        outer.on_spawn d;
        inner.on_spawn d);
    on_join =
      (fun d ->
        outer.on_join d;
        inner.on_join d);
    on_latch_release =
      (fun () ->
        outer.on_latch_release ();
        inner.on_latch_release ());
    on_latch_acquire =
      (fun d ->
        outer.on_latch_acquire d;
        inner.on_latch_acquire d);
    on_result_write =
      (fun ~domain ~pid ->
        outer.on_result_write ~domain ~pid;
        inner.on_result_write ~domain ~pid);
    on_result_read =
      (fun ~pid ->
        outer.on_result_read ~pid;
        inner.on_result_read ~pid);
  }

let domain_cap () = min 8 (max 2 (Domain.recommended_domain_count ()))

let default_domains ?procs () =
  match procs with None -> domain_cap () | Some p -> min p (domain_cap ())

let run ?domains ?hooks ~seed ~procs ~capacity ~algo () =
  if procs < 1 then invalid_arg "Domain_runner.run: procs must be >= 1";
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Domain_runner.run: domains must be >= 1";
      min d procs
    | None -> default_domains ~procs ()
  in
  let instrumented = Option.is_some hooks in
  let h = Option.value hooks ~default:null_hooks in
  let space = Atomic_space.create ~capacity in
  let root = Prng.Splitmix.of_int seed in
  let names = Array.make procs None in
  let probes = Array.make procs 0 in
  let start_latch = Atomic.make false in
  let run_process ~domain pid =
    let rng = Prng.Splitmix.split_at root pid in
    let count = ref 0 in
    (* The uninstrumented closures stay allocation-free on the TAS hot
       path; the instrumented ones wrap each op for the monitor. *)
    let tas, reset =
      if instrumented then
        ( (fun loc ->
            incr count;
            h.tas ~domain ~pid ~loc (fun () -> Atomic_space.tas space loc)),
          fun loc ->
            incr count;
            h.release ~domain ~pid ~loc (fun () ->
                Atomic_space.release space loc) )
      else
        ( (fun loc ->
            incr count;
            Atomic_space.tas space loc),
          fun loc ->
            incr count;
            Atomic_space.release space loc )
    in
    let env =
      Renaming.Env.make ~reset ~pid ~tas ~random_int:(Prng.Splitmix.int rng) ()
    in
    let name = algo env in
    (* Distinct [pid] slots per domain: plain writes race-free — a claim
       the hook lets Analysis.Hb_runner certify rather than assume. *)
    h.on_result_write ~domain ~pid;
    names.(pid) <- name;
    probes.(pid) <- !count
  in
  let worker d () =
    while not (Atomic.get start_latch) do
      Domain.cpu_relax ()
    done;
    h.on_latch_acquire d;
    let pid = ref d in
    while !pid < procs do
      run_process ~domain:d !pid;
      pid := !pid + domains
    done
  in
  let handles =
    Array.init domains (fun d ->
        h.on_spawn d;
        Domain.spawn (worker d))
  in
  let t0 = Unix.gettimeofday () in
  h.on_latch_release ();
  Atomic.set start_latch true;
  Array.iteri
    (fun d handle ->
      Domain.join handle;
      h.on_join d)
    handles;
  let t1 = Unix.gettimeofday () in
  if instrumented then
    for pid = 0 to procs - 1 do
      h.on_result_read ~pid
    done;
  {
    names;
    probes;
    wall_ns = (t1 -. t0) *. 1e9;
    domains_used = domains;
    total_probes = Array.fold_left ( + ) 0 probes;
  }

let check_unique_names r =
  let seen = Hashtbl.create (Array.length r.names) in
  Array.for_all
    (function
      | None -> false
      | Some u ->
        if Hashtbl.mem seen u then false
        else begin
          Hashtbl.replace seen u ();
          true
        end)
    r.names

let max_name r =
  Array.fold_left
    (fun acc -> function Some u when u > acc -> u | _ -> acc)
    (-1) r.names
