type acc = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations from the running mean *)
  mutable min : float;
  mutable max : float;
}

let acc_create () =
  { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let acc_add acc x =
  acc.count <- acc.count + 1;
  let delta = x -. acc.mean in
  acc.mean <- acc.mean +. (delta /. float_of_int acc.count);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean));
  if x < acc.min then acc.min <- x;
  if x > acc.max then acc.max <- x

let acc_count acc = acc.count
let acc_mean acc = acc.mean

let acc_variance acc =
  if acc.count < 2 then 0. else acc.m2 /. float_of_int (acc.count - 1)

let acc_stddev acc = sqrt (acc_variance acc)
let acc_min acc = acc.min
let acc_max acc = acc.max

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p05 : float;
  p95 : float;
  ci95_low : float;
  ci95_high : float;
}

let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then sorted.(lo)
    else
      let frac = pos -. float_of_int lo in
      (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let percentile xs q =
  if Array.length xs = 0 then invalid_arg "Summary.percentile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Summary.percentile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted q

let mean xs =
  if Array.length xs = 0 then invalid_arg "Summary.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let of_array xs =
  if Array.length xs = 0 then invalid_arg "Summary.of_array: empty sample";
  let acc = acc_create () in
  Array.iter (fun x -> acc_add acc x) xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let stddev = acc_stddev acc in
  let half_width = 1.96 *. stddev /. sqrt (float_of_int acc.count) in
  {
    count = acc.count;
    mean = acc.mean;
    stddev;
    min = acc.min;
    max = acc.max;
    median = percentile_sorted sorted 0.5;
    p05 = percentile_sorted sorted 0.05;
    p95 = percentile_sorted sorted 0.95;
    ci95_low = acc.mean -. half_width;
    ci95_high = acc.mean +. half_width;
  }

let of_int_array xs = of_array (Array.map float_of_int xs)

let pp ppf t =
  Format.fprintf ppf "mean=%.3f sd=%.3f med=%.3f [%.3f,%.3f]" t.mean t.stddev
    t.median t.min t.max
