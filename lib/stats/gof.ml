(* Lanczos approximation (g = 7, n = 9 coefficients). *)
let lanczos =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Gof.log_gamma: argument must be positive";
  if x < 0.5 then
    (* reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x) *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

(* Regularized lower incomplete gamma P(a, x): series for x < a+1,
   continued fraction (modified Lentz) for the complement otherwise. *)
let regularized_gamma_p ~a ~x =
  if a <= 0. then invalid_arg "Gof.regularized_gamma_p: a must be positive";
  if x < 0. then invalid_arg "Gof.regularized_gamma_p: x must be >= 0";
  if x = 0. then 0.
  else begin
    let lga = log_gamma a in
    if x < a +. 1. then begin
      (* series: P(a,x) = e^{-x} x^a / Gamma(a) * sum x^n / (a)_{n+1} *)
      let term = ref (1. /. a) in
      let sum = ref !term in
      let n = ref 1 in
      while Float.abs !term > Float.abs !sum *. 1e-15 && !n < 10_000 do
        term := !term *. x /. (a +. float_of_int !n);
        sum := !sum +. !term;
        incr n
      done;
      !sum *. exp ((a *. log x) -. x -. lga)
    end
    else begin
      (* continued fraction for Q(a,x), then P = 1 - Q *)
      let tiny = 1e-300 in
      let b = ref (x +. 1. -. a) in
      let c = ref (1. /. tiny) in
      let d = ref (1. /. !b) in
      let h = ref !d in
      let i = ref 1 in
      let continue_ = ref true in
      while !continue_ && !i < 10_000 do
        let fi = float_of_int !i in
        let an = -.fi *. (fi -. a) in
        b := !b +. 2.;
        d := (an *. !d) +. !b;
        if Float.abs !d < tiny then d := tiny;
        c := !b +. (an /. !c);
        if Float.abs !c < tiny then c := tiny;
        d := 1. /. !d;
        let delta = !d *. !c in
        h := !h *. delta;
        if Float.abs (delta -. 1.) < 1e-15 then continue_ := false;
        incr i
      done;
      let q = exp ((a *. log x) -. x -. lga) *. !h in
      1. -. q
    end
  end

let chi_square_cdf ~df x =
  if df < 1 then invalid_arg "Gof.chi_square_cdf: df must be >= 1";
  if x < 0. then invalid_arg "Gof.chi_square_cdf: x must be >= 0";
  regularized_gamma_p ~a:(float_of_int df /. 2.) ~x:(x /. 2.)

type test_result = { statistic : float; p_value : float }

let chi_square_test ~observed ~expected =
  let k = Array.length observed in
  if k = 0 then invalid_arg "Gof.chi_square_test: empty arrays";
  if Array.length expected <> k then
    invalid_arg "Gof.chi_square_test: length mismatch";
  if Array.exists (fun e -> e <= 0.) expected then
    invalid_arg "Gof.chi_square_test: expected counts must be positive";
  let statistic = ref 0. in
  for i = 0 to k - 1 do
    let d = float_of_int observed.(i) -. expected.(i) in
    statistic := !statistic +. (d *. d /. expected.(i))
  done;
  let df = k - 1 in
  let p_value =
    if df = 0 then 1. else 1. -. chi_square_cdf ~df !statistic
  in
  { statistic = !statistic; p_value }

let chi_square_uniform_test ~observed =
  let total = Array.fold_left ( + ) 0 observed in
  let k = Array.length observed in
  if k = 0 then invalid_arg "Gof.chi_square_test: empty arrays";
  let expected = Array.make k (float_of_int total /. float_of_int k) in
  chi_square_test ~observed ~expected

let ks_statistic ~cdf xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Gof.ks_statistic: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let fn = float_of_int n in
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let above = (float_of_int (i + 1) /. fn) -. f in
      let below = f -. (float_of_int i /. fn) in
      if above > !d then d := above;
      if below > !d then d := below)
    sorted;
  !d

(* Kolmogorov distribution tail: Q(lambda) = 2 sum_{j>=1} (-1)^{j-1}
   e^{-2 j^2 lambda^2}, with the standard finite-n correction. *)
let kolmogorov_q lambda =
  if lambda < 0.2 then 1.
  else begin
    let sum = ref 0. in
    for j = 1 to 100 do
      let fj = float_of_int j in
      let term = exp (-2. *. fj *. fj *. lambda *. lambda) in
      sum := !sum +. (if j mod 2 = 1 then term else -.term)
    done;
    Float.max 0. (Float.min 1. (2. *. !sum))
  end

let ks_test ~cdf xs =
  let d = ks_statistic ~cdf xs in
  let n = float_of_int (Array.length xs) in
  let sqrt_n = sqrt n in
  let lambda = (sqrt_n +. 0.12 +. (0.11 /. sqrt_n)) *. d in
  { statistic = d; p_value = kolmogorov_q lambda }
