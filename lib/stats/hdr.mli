(** HDR-style log-linear latency histogram.

    The serving layer needs tail quantiles (p50/p99/p999) over millions
    of nanosecond-scale latency samples with O(1) recording and bounded
    memory — exactly the trade-off of Gil Tene's HdrHistogram.  Values
    land in power-of-two ranges split into 64 linear sub-buckets, so
    every recorded value is represented with relative error at most
    1/64 (~1.6%) while the whole structure is a flat int array of a few
    thousand counters regardless of range.

    Unlike {!Histogram} (exact counts over small integer values, used
    for step counts), this module is for wide-range measurements where
    exact per-value counts are pointless and quantiles are the product.
    Values are plain non-negative ints; the serving layer records
    nanoseconds. *)

type t
(** A mutable histogram.  Not thread-safe; create one per recording
    domain and {!merge} afterwards. *)

val create : unit -> t

val record : t -> int -> unit
(** [record t v] counts one occurrence of [v].  Negative values are
    clamped to [0] (a backwards clock step must not crash a load run);
    values above 2^62/2 saturate into the top bucket. *)

val count : t -> int
(** Total recorded samples. *)

val min_value : t -> int
(** Smallest recorded value, exactly as recorded; [0] if empty. *)

val max_value : t -> int
(** Largest recorded value, exactly as recorded; [0] if empty. *)

val mean : t -> float
(** Exact mean of recorded values ([nan] if empty) — tracked as a
    running sum, not reconstructed from buckets. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0, 1]: an upper bound on the value at
    rank [ceil (q * count)], tight to one sub-bucket (relative error
    <= 1/64).  [0] if the histogram is empty.
    @raise Invalid_argument if [q] is outside [0, 1]. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds [src]'s counts into [into]. *)

val to_alist : t -> (int * int) list
(** [(bucket_upper_bound, count)] pairs in increasing value order, zero
    counts omitted — the artifact/debug view. *)
