(* Log-linear bucketing, HdrHistogram style: values in [2^k, 2^(k+1))
   are split into 64 linear sub-buckets of width 2^(k-6), so the index
   is O(1) bit twiddling and the representative (upper bound) of any
   bucket overestimates a member by at most 1/64 of its value. *)

let sub_bits = 6
let sub = 1 lsl sub_bits (* 64 *)

(* Largest exponent we distinguish; beyond this values saturate.  2^61
   keeps every intermediate computation inside OCaml's 63-bit ints. *)
let max_exp = 61

let bucket_count = sub + ((max_exp - sub_bits + 1) * sub)

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  {
    counts = Array.make bucket_count 0;
    total = 0;
    sum = 0.;
    min_v = max_int;
    max_v = 0;
  }

(* Position of the highest set bit of [v >= 1]. *)
let msb v =
  let k = ref 0 and v = ref v in
  if !v >= 1 lsl 32 then begin k := !k + 32; v := !v lsr 32 end;
  if !v >= 1 lsl 16 then begin k := !k + 16; v := !v lsr 16 end;
  if !v >= 1 lsl 8 then begin k := !k + 8; v := !v lsr 8 end;
  if !v >= 1 lsl 4 then begin k := !k + 4; v := !v lsr 4 end;
  if !v >= 1 lsl 2 then begin k := !k + 2; v := !v lsr 2 end;
  if !v >= 1 lsl 1 then k := !k + 1;
  !k

let index_of v =
  if v < sub then v
  else
    let k = msb v in
    let s = (v - (1 lsl k)) lsr (k - sub_bits) in
    sub + ((k - sub_bits) * sub) + s

(* Inclusive upper bound of bucket [i] — the quantile representative. *)
let upper_of i =
  if i < sub then i
  else
    let e = ((i - sub) / sub) + sub_bits in
    let s = (i - sub) mod sub in
    (1 lsl e) + ((s + 1) lsl (e - sub_bits)) - 1

let record t v =
  let v = if v < 0 then 0 else if v > 1 lsl max_exp then 1 lsl max_exp else v in
  t.counts.(index_of v) <- t.counts.(index_of v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. float_of_int v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let min_value t = if t.total = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.total = 0 then nan else t.sum /. float_of_int t.total

let quantile t q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Hdr.quantile: q outside [0,1]";
  if t.total = 0 then 0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int t.total)) in
    if rank <= 0 then t.min_v
    else begin
      let cum = ref 0 and i = ref 0 and res = ref t.max_v in
      (try
         while !i < bucket_count do
           cum := !cum + t.counts.(!i);
           if !cum >= rank then begin
             res := upper_of !i;
             raise Exit
           end;
           incr i
         done
       with Exit -> ());
      (* The bucket bound never needs to exceed the recorded extremes. *)
      if !res > t.max_v then t.max_v else if !res < t.min_v then t.min_v else !res
    end
  end

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total;
  into.sum <- into.sum +. src.sum;
  if src.total > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let to_alist t =
  let out = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.counts.(i) > 0 then out := (upper_of i, t.counts.(i)) :: !out
  done;
  !out
