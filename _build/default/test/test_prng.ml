(* Tests for lib/prng: SplitMix64, shuffling, distributions. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let float_close ?(eps = 1e-9) msg a b =
  if Float.abs (a -. b) > eps then
    Alcotest.failf "%s: %.12g <> %.12g (eps %.1g)" msg a b eps

(* ------------------------------------------------------------------ *)
(* Splitmix *)

let test_determinism () =
  let a = Prng.Splitmix.of_int 42 and b = Prng.Splitmix.of_int 42 in
  for i = 1 to 100 do
    check Alcotest.int64
      (Printf.sprintf "draw %d" i)
      (Prng.Splitmix.next_int64 a) (Prng.Splitmix.next_int64 b)
  done

let test_seeds_differ () =
  let a = Prng.Splitmix.of_int 1 and b = Prng.Splitmix.of_int 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.Splitmix.next_int64 a <> Prng.Splitmix.next_int64 b then
      differs := true
  done;
  checkb "streams differ" true !differs

let test_copy_independent () =
  let a = Prng.Splitmix.of_int 7 in
  let _ = Prng.Splitmix.next_int64 a in
  let b = Prng.Splitmix.copy a in
  let xa = Prng.Splitmix.next_int64 a in
  (* advancing [a] further must not affect [b] *)
  let _ = Prng.Splitmix.next_int64 a in
  let xb = Prng.Splitmix.next_int64 b in
  check Alcotest.int64 "copy replays the stream" xa xb

let test_split_at_pure () =
  let a = Prng.Splitmix.of_int 9 in
  let c1 = Prng.Splitmix.split_at a 5 in
  let c2 = Prng.Splitmix.split_at a 5 in
  check Alcotest.int64 "same child stream" (Prng.Splitmix.next_int64 c1)
    (Prng.Splitmix.next_int64 c2);
  (* and the parent was not advanced *)
  let b = Prng.Splitmix.of_int 9 in
  check Alcotest.int64 "parent unchanged" (Prng.Splitmix.next_int64 a)
    (Prng.Splitmix.next_int64 b)

let test_split_children_differ () =
  let a = Prng.Splitmix.of_int 11 in
  let c1 = Prng.Splitmix.split_at a 0 and c2 = Prng.Splitmix.split_at a 1 in
  checkb "children differ" false
    (Prng.Splitmix.next_int64 c1 = Prng.Splitmix.next_int64 c2)

let test_split_advances () =
  let a = Prng.Splitmix.of_int 13 in
  let b = Prng.Splitmix.copy a in
  let _child = Prng.Splitmix.split a in
  checkb "split advances parent" false
    (Prng.Splitmix.next_int64 a = Prng.Splitmix.next_int64 b)

let test_int_bounds () =
  let rng = Prng.Splitmix.of_int 3 in
  for _ = 1 to 10_000 do
    let v = Prng.Splitmix.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_int_power_of_two () =
  let rng = Prng.Splitmix.of_int 4 in
  for _ = 1 to 10_000 do
    let v = Prng.Splitmix.int rng 64 in
    if v < 0 || v >= 64 then Alcotest.failf "out of range: %d" v
  done

let test_int_invalid () =
  let rng = Prng.Splitmix.of_int 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Prng.Splitmix.int rng 0))

let test_int_one () =
  let rng = Prng.Splitmix.of_int 6 in
  for _ = 1 to 100 do
    checki "bound 1 gives 0" 0 (Prng.Splitmix.int rng 1)
  done

let test_int_mean () =
  let rng = Prng.Splitmix.of_int 8 in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.Splitmix.int rng 100
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* mean of Unif{0..99} is 49.5, sd of the mean ~ 0.13 *)
  if Float.abs (mean -. 49.5) > 1.0 then
    Alcotest.failf "uniform mean suspicious: %f" mean

let test_int_in () =
  let rng = Prng.Splitmix.of_int 10 in
  for _ = 1 to 1000 do
    let v = Prng.Splitmix.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "int_in out of range: %d" v
  done;
  Alcotest.check_raises "empty range" (Invalid_argument "Splitmix.int_in: empty range")
    (fun () -> ignore (Prng.Splitmix.int_in rng 3 2))

let test_float_range () =
  let rng = Prng.Splitmix.of_int 12 in
  for _ = 1 to 10_000 do
    let v = Prng.Splitmix.float rng in
    if v < 0. || v >= 1. then Alcotest.failf "float out of range: %f" v
  done

let test_bool_balanced () =
  let rng = Prng.Splitmix.of_int 14 in
  let trues = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.Splitmix.bool rng then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  if Float.abs (frac -. 0.5) > 0.02 then
    Alcotest.failf "coin bias suspicious: %f" frac

let test_bernoulli_edges () =
  let rng = Prng.Splitmix.of_int 16 in
  for _ = 1 to 100 do
    checkb "p=0" false (Prng.Splitmix.bernoulli rng 0.);
    checkb "p=1" true (Prng.Splitmix.bernoulli rng 1.);
    checkb "p<0" false (Prng.Splitmix.bernoulli rng (-0.5));
    checkb "p>1" true (Prng.Splitmix.bernoulli rng 1.5)
  done

(* ------------------------------------------------------------------ *)
(* Shuffle *)

let test_permutation_is_permutation () =
  let rng = Prng.Splitmix.of_int 20 in
  let p = Prng.Shuffle.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation of 0..99"
    (Array.init 100 (fun i -> i))
    sorted

let test_shuffle_preserves_elements () =
  let rng = Prng.Splitmix.of_int 21 in
  let a = Array.init 50 (fun i -> i * i) in
  let b = Array.copy a in
  Prng.Shuffle.shuffle_in_place rng b;
  Array.sort compare b;
  Alcotest.(check (array int)) "same multiset" a b

let test_shuffle_empty_and_single () =
  let rng = Prng.Splitmix.of_int 22 in
  let empty = [||] in
  Prng.Shuffle.shuffle_in_place rng empty;
  Alcotest.(check (array int)) "empty ok" [||] empty;
  let one = [| 42 |] in
  Prng.Shuffle.shuffle_in_place rng one;
  Alcotest.(check (array int)) "singleton ok" [| 42 |] one

let test_shuffle_not_identity () =
  (* Over 200 elements, a uniformly random permutation is the identity
     with probability 1/200!; any fixed seed giving identity means a
     bug. *)
  let rng = Prng.Splitmix.of_int 23 in
  let a = Array.init 200 (fun i -> i) in
  Prng.Shuffle.shuffle_in_place rng a;
  checkb "shuffled" false (a = Array.init 200 (fun i -> i))

let test_sample_without_replacement () =
  let rng = Prng.Splitmix.of_int 24 in
  let s = Prng.Shuffle.sample_without_replacement rng 100 30 in
  checki "size" 30 (Array.length s);
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun v ->
      if v < 0 || v >= 100 then Alcotest.failf "out of range: %d" v;
      if Hashtbl.mem seen v then Alcotest.failf "duplicate: %d" v;
      Hashtbl.replace seen v ())
    s

let test_sample_edge_cases () =
  let rng = Prng.Splitmix.of_int 25 in
  checki "k=0" 0 (Array.length (Prng.Shuffle.sample_without_replacement rng 10 0));
  let all = Prng.Shuffle.sample_without_replacement rng 10 10 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k=n is a permutation"
    (Array.init 10 (fun i -> i))
    sorted;
  Alcotest.check_raises "k>n"
    (Invalid_argument "Shuffle.sample_without_replacement: need 0 <= k <= n")
    (fun () -> ignore (Prng.Shuffle.sample_without_replacement rng 5 6))

let test_choose () =
  let rng = Prng.Splitmix.of_int 26 in
  let a = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    let v = Prng.Shuffle.choose rng a in
    checkb "member" true (Array.exists (fun x -> x = v) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Shuffle.choose: empty array")
    (fun () -> ignore (Prng.Shuffle.choose rng [||]))

(* ------------------------------------------------------------------ *)
(* Dist *)

let test_log_factorial_small () =
  float_close "0!" 0. (Prng.Dist.log_factorial 0);
  float_close "1!" 0. (Prng.Dist.log_factorial 1);
  float_close "5!" (log 120.) (Prng.Dist.log_factorial 5);
  float_close ~eps:1e-8 "10!" (log 3628800.) (Prng.Dist.log_factorial 10)

let test_log_factorial_stirling () =
  (* The Stirling branch must agree with the recurrence
     ln (n!) = ln n + ln ((n-1)!) across the table boundary. *)
  let lf = Prng.Dist.log_factorial in
  for n = 256 to 300 do
    float_close ~eps:1e-6
      (Printf.sprintf "recurrence at %d" n)
      (lf n)
      (lf (n - 1) +. log (float_of_int n))
  done

let test_log_factorial_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Dist.log_factorial: negative argument") (fun () ->
      ignore (Prng.Dist.log_factorial (-1)))

let test_poisson_pmf_sums_to_one () =
  List.iter
    (fun lambda ->
      let sum = ref 0. in
      for k = 0 to 200 do
        sum := !sum +. Prng.Dist.poisson_pmf ~lambda k
      done;
      float_close ~eps:1e-6 (Printf.sprintf "sum for lambda=%f" lambda) 1. !sum)
    [ 0.1; 1.0; 4.5; 20.0 ]

let test_poisson_pmf_edges () =
  float_close "pmf(-1)" 0. (Prng.Dist.poisson_pmf ~lambda:3. (-1));
  float_close "lambda=0, k=0" 1. (Prng.Dist.poisson_pmf ~lambda:0. 0);
  float_close "lambda=0, k=1" 0. (Prng.Dist.poisson_pmf ~lambda:0. 1);
  float_close ~eps:1e-12 "pmf(0) = e^-3" (exp (-3.))
    (Prng.Dist.poisson_pmf ~lambda:3. 0)

let test_poisson_cdf_monotone () =
  let lambda = 5.0 in
  let prev = ref 0. in
  for n = 0 to 50 do
    let c = Prng.Dist.poisson_cdf ~lambda n in
    if c < !prev -. 1e-12 then Alcotest.failf "cdf decreasing at %d" n;
    prev := c
  done;
  float_close ~eps:1e-9 "cdf tail" 1. (Prng.Dist.poisson_cdf ~lambda 200)

let test_poisson_cdf_matches_pmf () =
  let lambda = 2.5 in
  let acc = ref 0. in
  for n = 0 to 30 do
    acc := !acc +. Prng.Dist.poisson_pmf ~lambda n;
    float_close ~eps:1e-9
      (Printf.sprintf "cdf(%d)" n)
      !acc
      (Prng.Dist.poisson_cdf ~lambda n)
  done

let test_poisson_cdf_large_lambda () =
  (* Exercise the log-space fallback: e^-800 underflows. *)
  let lambda = 800. in
  let c = Prng.Dist.poisson_cdf ~lambda 800 in
  (* median of Poisson is ~ lambda, so CDF at the mean is close to 1/2 *)
  if c < 0.4 || c > 0.6 then Alcotest.failf "cdf at mean: %f" c

let test_poisson_quantile_inverse () =
  let lambda = 7.0 in
  List.iter
    (fun u ->
      let k = Prng.Dist.poisson_quantile ~lambda u in
      let at = Prng.Dist.poisson_cdf ~lambda k in
      let below = Prng.Dist.poisson_cdf ~lambda (k - 1) in
      if at < u then Alcotest.failf "cdf(q(u)) < u for u=%f" u;
      if k > 0 && below >= u then Alcotest.failf "quantile not minimal for u=%f" u)
    [ 0.0; 0.01; 0.25; 0.5; 0.75; 0.99; 0.9999 ]

let test_poisson_quantile_invalid () =
  Alcotest.check_raises "u=1" (Invalid_argument "Dist.poisson_quantile: u not in [0,1)")
    (fun () -> ignore (Prng.Dist.poisson_quantile ~lambda:1. 1.))

let test_poisson_sample_moments () =
  let rng = Prng.Splitmix.of_int 30 in
  List.iter
    (fun lambda ->
      let n = 20_000 in
      let acc = Stats.Summary.acc_create () in
      for _ = 1 to n do
        Stats.Summary.acc_add acc
          (float_of_int (Prng.Dist.poisson_sample rng ~lambda))
      done;
      let mean = Stats.Summary.acc_mean acc in
      let var = Stats.Summary.acc_variance acc in
      let tol = 5. *. sqrt (lambda /. float_of_int n) in
      if Float.abs (mean -. lambda) > tol then
        Alcotest.failf "mean for lambda=%f: %f" lambda mean;
      (* variance tolerance is looser *)
      if Float.abs (var -. lambda) > 10. *. tol *. sqrt lambda +. 0.1 then
        Alcotest.failf "variance for lambda=%f: %f" lambda var)
    [ 0.5; 3.0; 100.0 ]

let test_poisson_sample_zero () =
  let rng = Prng.Splitmix.of_int 31 in
  for _ = 1 to 50 do
    checki "lambda=0" 0 (Prng.Dist.poisson_sample rng ~lambda:0.)
  done

let test_binomial_moments () =
  let rng = Prng.Splitmix.of_int 32 in
  let n_samples = 10_000 in
  let acc = Stats.Summary.acc_create () in
  for _ = 1 to n_samples do
    Stats.Summary.acc_add acc
      (float_of_int (Prng.Dist.binomial_sample rng ~n:40 ~p:0.3))
  done;
  let mean = Stats.Summary.acc_mean acc in
  if Float.abs (mean -. 12.) > 0.3 then Alcotest.failf "binomial mean: %f" mean

let test_geometric () =
  let rng = Prng.Splitmix.of_int 33 in
  for _ = 1 to 50 do
    checki "p=1 gives 0" 0 (Prng.Dist.geometric_sample rng ~p:1.)
  done;
  let acc = Stats.Summary.acc_create () in
  for _ = 1 to 20_000 do
    Stats.Summary.acc_add acc
      (float_of_int (Prng.Dist.geometric_sample rng ~p:0.25))
  done;
  (* mean is (1-p)/p = 3 *)
  let mean = Stats.Summary.acc_mean acc in
  if Float.abs (mean -. 3.) > 0.25 then Alcotest.failf "geometric mean: %f" mean;
  Alcotest.check_raises "p=0" (Invalid_argument "Dist.geometric_sample: p not in (0,1]")
    (fun () -> ignore (Prng.Dist.geometric_sample rng ~p:0.))

let test_exponential () =
  let rng = Prng.Splitmix.of_int 34 in
  let acc = Stats.Summary.acc_create () in
  for _ = 1 to 20_000 do
    Stats.Summary.acc_add acc (Prng.Dist.exponential_sample rng ~rate:2.)
  done;
  let mean = Stats.Summary.acc_mean acc in
  if Float.abs (mean -. 0.5) > 0.05 then Alcotest.failf "exponential mean: %f" mean;
  Alcotest.check_raises "rate=0"
    (Invalid_argument "Dist.exponential_sample: rate must be positive") (fun () ->
      ignore (Prng.Dist.exponential_sample rng ~rate:0.))

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let qcheck_int_range =
  QCheck.Test.make ~name:"splitmix int is always in range" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Prng.Splitmix.of_int seed in
      let v = Prng.Splitmix.int rng bound in
      v >= 0 && v < bound)

let qcheck_permutation =
  QCheck.Test.make ~name:"permutation is a bijection" ~count:200
    QCheck.(pair small_int (int_range 0 200))
    (fun (seed, n) ->
      let rng = Prng.Splitmix.of_int seed in
      let p = Prng.Shuffle.permutation rng n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let qcheck_quantile_inverse =
  QCheck.Test.make ~name:"poisson quantile inverts cdf" ~count:300
    QCheck.(pair (float_range 0.01 50.) (float_range 0. 0.9999))
    (fun (lambda, u) ->
      let k = Prng.Dist.poisson_quantile ~lambda u in
      Prng.Dist.poisson_cdf ~lambda k >= u
      && (k = 0 || Prng.Dist.poisson_cdf ~lambda (k - 1) < u))

let qcheck_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement distinct" ~count:200
    QCheck.(triple small_int (int_range 1 100) (int_range 0 100))
    (fun (seed, n, k0) ->
      let k = min k0 n in
      let rng = Prng.Splitmix.of_int seed in
      let s = Prng.Shuffle.sample_without_replacement rng n k in
      let tbl = Hashtbl.create 16 in
      Array.for_all
        (fun v ->
          let fresh = not (Hashtbl.mem tbl v) in
          Hashtbl.replace tbl v ();
          fresh && v >= 0 && v < n)
        s)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "prng.splitmix",
      [
        tc "determinism" `Quick test_determinism;
        tc "seeds differ" `Quick test_seeds_differ;
        tc "copy independent" `Quick test_copy_independent;
        tc "split_at pure" `Quick test_split_at_pure;
        tc "split children differ" `Quick test_split_children_differ;
        tc "split advances" `Quick test_split_advances;
        tc "int bounds" `Quick test_int_bounds;
        tc "int power of two" `Quick test_int_power_of_two;
        tc "int invalid" `Quick test_int_invalid;
        tc "int bound one" `Quick test_int_one;
        tc "int mean" `Quick test_int_mean;
        tc "int_in" `Quick test_int_in;
        tc "float range" `Quick test_float_range;
        tc "bool balanced" `Quick test_bool_balanced;
        tc "bernoulli edges" `Quick test_bernoulli_edges;
        QCheck_alcotest.to_alcotest qcheck_int_range;
      ] );
    ( "prng.shuffle",
      [
        tc "permutation is permutation" `Quick test_permutation_is_permutation;
        tc "shuffle preserves elements" `Quick test_shuffle_preserves_elements;
        tc "empty and singleton" `Quick test_shuffle_empty_and_single;
        tc "not identity" `Quick test_shuffle_not_identity;
        tc "sample without replacement" `Quick test_sample_without_replacement;
        tc "sample edge cases" `Quick test_sample_edge_cases;
        tc "choose" `Quick test_choose;
        QCheck_alcotest.to_alcotest qcheck_permutation;
        QCheck_alcotest.to_alcotest qcheck_sample_distinct;
      ] );
    ( "prng.dist",
      [
        tc "log_factorial small" `Quick test_log_factorial_small;
        tc "log_factorial stirling" `Quick test_log_factorial_stirling;
        tc "log_factorial negative" `Quick test_log_factorial_negative;
        tc "poisson pmf sums to 1" `Quick test_poisson_pmf_sums_to_one;
        tc "poisson pmf edges" `Quick test_poisson_pmf_edges;
        tc "poisson cdf monotone" `Quick test_poisson_cdf_monotone;
        tc "poisson cdf matches pmf" `Quick test_poisson_cdf_matches_pmf;
        tc "poisson cdf large lambda" `Quick test_poisson_cdf_large_lambda;
        tc "poisson quantile inverse" `Quick test_poisson_quantile_inverse;
        tc "poisson quantile invalid" `Quick test_poisson_quantile_invalid;
        tc "poisson sample moments" `Slow test_poisson_sample_moments;
        tc "poisson sample zero" `Quick test_poisson_sample_zero;
        tc "binomial moments" `Quick test_binomial_moments;
        tc "geometric" `Quick test_geometric;
        tc "exponential" `Quick test_exponential;
        QCheck_alcotest.to_alcotest qcheck_quantile_inverse;
      ] );
  ]
