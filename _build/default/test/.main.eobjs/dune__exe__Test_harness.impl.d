test/test_harness.ml: Alcotest Float Gen Harness List Printf QCheck QCheck_alcotest Stats String
