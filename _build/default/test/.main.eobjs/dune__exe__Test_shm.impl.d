test/test_shm.ml: Alcotest Array Domain Printf QCheck QCheck_alcotest Renaming Shm
