test/test_sim.ml: Alcotest Array Baselines Hashtbl Int List Printf Prng QCheck QCheck_alcotest Renaming Set Sim
