test/test_gof.ml: Alcotest Array Float Gen List Printf Prng QCheck QCheck_alcotest Stats
