test/main.mli:
