test/test_adaptive.ml: Alcotest Array List Printf Prng QCheck QCheck_alcotest Renaming Sim
