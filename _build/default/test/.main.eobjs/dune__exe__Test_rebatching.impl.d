test/test_rebatching.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Renaming Sim
