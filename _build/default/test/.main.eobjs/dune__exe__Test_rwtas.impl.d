test/test_rwtas.ml: Alcotest Array Float Hashtbl List Option Printf Prng QCheck QCheck_alcotest Rwtas Sim
