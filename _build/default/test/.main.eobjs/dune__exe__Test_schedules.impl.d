test/test_schedules.ml: Alcotest Array Float List Prng QCheck QCheck_alcotest Renaming Sim Stats
