test/test_stats.ml: Alcotest Array Float Gen List Prng QCheck QCheck_alcotest Stats String
