test/test_baselines.ml: Alcotest Array Baselines List Printf QCheck QCheck_alcotest Renaming Sim
