test/test_verification.ml: Alcotest Array List Printf QCheck QCheck_alcotest Renaming Sim String
