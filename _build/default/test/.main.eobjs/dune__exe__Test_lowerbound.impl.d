test/test_lowerbound.ml: Alcotest Array Float List Lowerbound Printf Prng QCheck QCheck_alcotest
