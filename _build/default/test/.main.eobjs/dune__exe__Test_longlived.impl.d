test/test_longlived.ml: Alcotest Array Hashtbl List Printf Prng QCheck QCheck_alcotest Renaming Shm Sim
