(* Tests for lib/sim: dynset, location space, scheduler, adversaries,
   runner. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Dynset *)

let test_dynset_basic () =
  let s = Sim.Dynset.create () in
  checkb "empty" true (Sim.Dynset.is_empty s);
  Sim.Dynset.add s 3;
  Sim.Dynset.add s 5;
  Sim.Dynset.add s 3;
  (* duplicate: no-op *)
  checki "size" 2 (Sim.Dynset.size s);
  checkb "mem 3" true (Sim.Dynset.mem s 3);
  checkb "mem 4" false (Sim.Dynset.mem s 4);
  Sim.Dynset.remove s 3;
  checkb "removed" false (Sim.Dynset.mem s 3);
  Sim.Dynset.remove s 42;
  (* absent: no-op *)
  checki "size after removes" 1 (Sim.Dynset.size s)

let test_dynset_any_first () =
  let s = Sim.Dynset.create () in
  let rng = Prng.Splitmix.of_int 1 in
  Alcotest.check_raises "any empty" (Invalid_argument "Dynset.any: empty set")
    (fun () -> ignore (Sim.Dynset.any s rng));
  Alcotest.check_raises "first empty" (Invalid_argument "Dynset.first: empty set")
    (fun () -> ignore (Sim.Dynset.first s));
  for i = 0 to 9 do
    Sim.Dynset.add s (i * 10)
  done;
  for _ = 1 to 100 do
    let v = Sim.Dynset.any s rng in
    checkb "member" true (Sim.Dynset.mem s v)
  done;
  checkb "first member" true (Sim.Dynset.mem s (Sim.Dynset.first s))

let test_dynset_growth () =
  let s = Sim.Dynset.create () in
  for i = 0 to 999 do
    Sim.Dynset.add s i
  done;
  checki "size 1000" 1000 (Sim.Dynset.size s);
  for i = 0 to 999 do
    if i mod 2 = 0 then Sim.Dynset.remove s i
  done;
  checki "half left" 500 (Sim.Dynset.size s);
  checki "list size" 500 (List.length (Sim.Dynset.to_list s))

let test_dynset_negative () =
  let s = Sim.Dynset.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Dynset.add: negative element")
    (fun () -> Sim.Dynset.add s (-1))

let qcheck_dynset_model =
  (* model-based test against a reference Set *)
  QCheck.Test.make ~name:"dynset agrees with a reference set" ~count:200
    QCheck.(list (pair bool (int_range 0 50)))
    (fun ops ->
      let module IS = Set.Make (Int) in
      let s = Sim.Dynset.create () in
      let reference = ref IS.empty in
      List.iter
        (fun (is_add, v) ->
          if is_add then begin
            Sim.Dynset.add s v;
            reference := IS.add v !reference
          end
          else begin
            Sim.Dynset.remove s v;
            reference := IS.remove v !reference
          end)
        ops;
      Sim.Dynset.size s = IS.cardinal !reference
      && IS.for_all (fun v -> Sim.Dynset.mem s v) !reference
      && List.for_all (fun v -> IS.mem v !reference) (Sim.Dynset.to_list s))

(* ------------------------------------------------------------------ *)
(* Location space *)

let test_space_tas_semantics () =
  let sp = Sim.Location_space.create () in
  checkb "first wins" true (Sim.Location_space.tas sp 5);
  checkb "second loses" false (Sim.Location_space.tas sp 5);
  checkb "third loses" false (Sim.Location_space.tas sp 5);
  checkb "other loc wins" true (Sim.Location_space.tas sp 6);
  checki "probes" 4 (Sim.Location_space.probe_count sp);
  checki "wins" 2 (Sim.Location_space.win_count sp);
  checki "hwm" 7 (Sim.Location_space.high_water_mark sp)

let test_space_growth () =
  let sp = Sim.Location_space.create ~capacity:2 () in
  checkb "far location wins" true (Sim.Location_space.tas sp 100_000);
  checkb "is_taken" true (Sim.Location_space.is_taken sp 100_000);
  checkb "not taken" false (Sim.Location_space.is_taken sp 99_999);
  checki "hwm" 100_001 (Sim.Location_space.high_water_mark sp)

let test_space_reset () =
  let sp = Sim.Location_space.create () in
  ignore (Sim.Location_space.tas sp 3);
  Sim.Location_space.reset sp;
  checki "probes" 0 (Sim.Location_space.probe_count sp);
  checkb "free again" true (Sim.Location_space.tas sp 3)

let test_space_negative () =
  let sp = Sim.Location_space.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Location_space.tas: negative location") (fun () ->
      ignore (Sim.Location_space.tas sp (-1)))

let qcheck_one_winner_per_location =
  QCheck.Test.make ~name:"each location won at most once" ~count:100
    QCheck.(list (int_range 0 20))
    (fun locs ->
      let sp = Sim.Location_space.create () in
      let wins = Hashtbl.create 16 in
      List.iter
        (fun loc ->
          if Sim.Location_space.tas sp loc then begin
            if Hashtbl.mem wins loc then
              QCheck.Test.fail_report "double win";
            Hashtbl.replace wins loc ()
          end)
        locs;
      true)

(* ------------------------------------------------------------------ *)
(* Scheduler + runner *)

(* A trivial algorithm: probe locations pid*10, pid*10+1, ... up to 3
   probes (all free, disjoint per pid), then return the first. *)
let disjoint_algo (env : Renaming.Env.t) =
  let base = env.pid * 10 in
  let w1 = env.tas base in
  let w2 = env.tas (base + 1) in
  let w3 = env.tas (base + 2) in
  if w1 && w2 && w3 then Some base else None

let test_scheduler_trivial () =
  let r = Sim.Runner.run ~seed:1 ~n:4 ~algo:disjoint_algo () in
  Array.iteri (fun pid name -> checkb "name" true (name = Some (pid * 10))) r.names;
  Array.iter (fun s -> checki "steps" 3 s) r.steps;
  checki "total" 12 r.total_steps;
  checki "max" 3 r.max_steps

let contending_algo (env : Renaming.Env.t) =
  (* everyone fights for location 0; losers take location pid+1 *)
  if env.tas 0 then Some 0 else if env.tas (env.pid + 1) then Some (env.pid + 1) else None

let test_one_winner_under_all_adversaries () =
  List.iter
    (fun adv ->
      let r = Sim.Runner.run ~adversary:adv ~seed:7 ~n:8 ~algo:contending_algo () in
      let zero_winners =
        Array.fold_left
          (fun acc name -> if name = Some 0 then acc + 1 else acc)
          0 r.names
      in
      checki (Printf.sprintf "%s: one winner of loc 0" adv.Sim.Adversary.name) 1
        zero_winners;
      checkb
        (Printf.sprintf "%s: unique names" adv.Sim.Adversary.name)
        true
        (Sim.Runner.check_unique_names r))
    Sim.Adversary.all_builtin

let test_determinism_same_seed () =
  let algo env = Baselines.Uniform_probe.get_name env ~m:64 ~max_steps:1000 in
  let r1 = Sim.Runner.run ~seed:5 ~n:32 ~algo () in
  let r2 = Sim.Runner.run ~seed:5 ~n:32 ~algo () in
  Alcotest.(check (array (option int))) "same names" r1.names r2.names;
  Alcotest.(check (array int)) "same steps" r1.steps r2.steps;
  checki "same total" r1.total_steps r2.total_steps

let test_different_seeds_differ () =
  let algo env = Baselines.Uniform_probe.get_name env ~m:64 ~max_steps:1000 in
  let r1 = Sim.Runner.run ~seed:5 ~n:32 ~algo () in
  let r2 = Sim.Runner.run ~seed:6 ~n:32 ~algo () in
  checkb "names differ somewhere" true (r1.names <> r2.names)

let test_step_limit () =
  (* a process that loops forever on a taken location *)
  let stubborn (env : Renaming.Env.t) =
    let rec go () = if env.tas 0 then Some 0 else go () in
    go ()
  in
  Alcotest.check_raises "limit" Sim.Scheduler.Step_limit_exceeded (fun () ->
      ignore (Sim.Runner.run ~max_total_steps:100 ~seed:1 ~n:2 ~algo:stubborn ()))

let test_sequential_runner () =
  let algo env = Baselines.Linear_scan.get_name env ~m:100 in
  let r = Sim.Runner.run_sequential ~seed:3 ~n:50 ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names r);
  (* sequential linear scan assigns names exactly 0..49 *)
  checki "max name" 49 (Sim.Runner.max_name r);
  checki "total = sum steps" r.total_steps (Array.fold_left ( + ) 0 r.steps)

let test_sequential_unshuffled_order () =
  let algo env = Baselines.Linear_scan.get_name env ~m:10 in
  let r = Sim.Runner.run_sequential ~shuffled:false ~seed:3 ~n:5 ~algo () in
  (* pid i runs i-th and takes location i *)
  Array.iteri (fun pid name -> checkb "name = pid" true (name = Some pid)) r.names

let test_crash_adversary () =
  let adversary = Sim.Adversary.with_crashes ~fraction:0.4 Sim.Adversary.random in
  let algo env =
    Renaming.Rebatching.get_name env (Renaming.Rebatching.make ~n:64 ())
  in
  let r = Sim.Runner.run ~adversary ~seed:11 ~n:64 ~algo () in
  checkb "some crashes" true (r.crash_count > 0);
  checkb "crash bound respected" true (r.crash_count <= 26);
  checkb "survivors have unique names" true (Sim.Runner.check_unique_names r);
  Array.iteri
    (fun pid crashed -> if crashed then checkb "crashed pid has no name" true (r.names.(pid) = None))
    r.crashed

let test_crash_fraction_zero () =
  let adversary = Sim.Adversary.with_crashes ~fraction:0. Sim.Adversary.random in
  let algo env =
    Renaming.Rebatching.get_name env (Renaming.Rebatching.make ~n:16 ())
  in
  let r = Sim.Runner.run ~adversary ~seed:2 ~n:16 ~algo () in
  checki "no crashes" 0 r.crash_count

let test_crash_invalid_fraction () =
  Alcotest.check_raises "fraction 1"
    (Invalid_argument "Adversary.with_crashes: fraction must be in [0, 1)")
    (fun () -> ignore (Sim.Adversary.with_crashes ~fraction:1. Sim.Adversary.random))

let test_adversary_by_name () =
  List.iter
    (fun name ->
      match Sim.Adversary.by_name name with
      | Some a -> Alcotest.check Alcotest.string "name" name a.Sim.Adversary.name
      | None -> Alcotest.failf "missing adversary %s" name)
    [ "random"; "round-robin"; "layered"; "greedy"; "sequential" ];
  checkb "unknown" true (Sim.Adversary.by_name "nope" = None)

let test_greedy_hurts_uniform () =
  (* The greedy-collision adversary should never make uniform probing
     cheaper than the random scheduler does, and typically makes it
     measurably worse.  Compare total steps over a few seeds. *)
  (* A tight namespace (m = n) makes scheduling order matter. *)
  let algo env = Baselines.Uniform_probe.get_name env ~m:32 ~max_steps:10_000 in
  let total adversary seed =
    (Sim.Runner.run ~adversary ~seed ~n:32 ~algo ()).total_steps
  in
  let sum_random = ref 0 and sum_greedy = ref 0 in
  for seed = 1 to 30 do
    sum_random := !sum_random + total Sim.Adversary.random seed;
    sum_greedy := !sum_greedy + total Sim.Adversary.greedy_collision seed
  done;
  checkb
    (Printf.sprintf "greedy (%d) >= 0.9 * random (%d)" !sum_greedy !sum_random)
    true
    (float_of_int !sum_greedy >= 0.9 *. float_of_int !sum_random)

let test_event_stream_counts_match_steps () =
  let probes = ref 0 in
  let on_event ~pid:_ = function
    | Renaming.Events.Probe _ -> incr probes
    | _ -> ()
  in
  let algo env =
    Renaming.Rebatching.get_name env (Renaming.Rebatching.make ~n:32 ())
  in
  let r = Sim.Runner.run ~on_event ~seed:21 ~n:32 ~algo () in
  checki "every step is a probe event" r.total_steps !probes

let test_layered_adversary_runs_rebatching () =
  let algo env =
    Renaming.Rebatching.get_name env (Renaming.Rebatching.make ~n:128 ())
  in
  let r =
    Sim.Runner.run ~adversary:Sim.Adversary.layered ~seed:13 ~n:128 ~algo ()
  in
  checkb "unique" true (Sim.Runner.check_unique_names r)

let qcheck_sequential_adversary_equals_sequential_runner =
  (* Two independent implementations of the same schedule: the effect
     scheduler driven by the [sequential] adversary must produce exactly
     the results of the direct sequential runner (unshuffled).  This is a
     strong end-to-end check of the scheduler, the effect handler and the
     step accounting. *)
  QCheck.Test.make ~name:"effect scheduler == sequential runner on solo schedule"
    ~count:30
    QCheck.(pair small_int (int_range 1 100))
    (fun (seed, n) ->
      let instance = Renaming.Rebatching.make ~t0:3 ~n () in
      let algo env = Renaming.Rebatching.get_name env instance in
      let effectful =
        Sim.Runner.run ~adversary:Sim.Adversary.sequential ~seed ~n ~algo ()
      in
      let direct = Sim.Runner.run_sequential ~shuffled:false ~seed ~n ~algo () in
      effectful.names = direct.names
      && effectful.steps = direct.steps
      && effectful.total_steps = direct.total_steps)

let test_point_contention_tracking () =
  (* All-at-once: everyone is active together at some point. *)
  let algo env = Baselines.Cyclic_scan.get_name env ~m:64 in
  let r = Sim.Runner.run ~seed:31 ~n:16 ~algo () in
  checkb "high contention all-at-once" true (r.point_contention > 1);
  (* Extreme staggering: arrivals far apart => solo executions. *)
  let adversary =
    Sim.Arrivals.staggered ~interval:1000 Sim.Adversary.random
  in
  let r2 = Sim.Runner.run ~adversary ~seed:31 ~n:16 ~algo () in
  checki "solo under extreme staggering" 1 r2.point_contention;
  (* Sequential runner reports 1 by construction. *)
  let r3 = Sim.Runner.run_sequential ~seed:31 ~n:16 ~algo () in
  checki "sequential" 1 r3.point_contention

let test_round_robin_fairness () =
  (* Under round-robin with identical 3-step processes, every process
     executes the same number of steps. *)
  let r =
    Sim.Runner.run ~adversary:Sim.Adversary.round_robin ~seed:1 ~n:6
      ~algo:disjoint_algo ()
  in
  Array.iter (fun s -> checki "equal steps" 3 s) r.steps

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.dynset",
      [
        tc "basic" `Quick test_dynset_basic;
        tc "any/first" `Quick test_dynset_any_first;
        tc "growth" `Quick test_dynset_growth;
        tc "negative" `Quick test_dynset_negative;
        QCheck_alcotest.to_alcotest qcheck_dynset_model;
      ] );
    ( "sim.location_space",
      [
        tc "tas semantics" `Quick test_space_tas_semantics;
        tc "growth" `Quick test_space_growth;
        tc "reset" `Quick test_space_reset;
        tc "negative" `Quick test_space_negative;
        QCheck_alcotest.to_alcotest qcheck_one_winner_per_location;
      ] );
    ( "sim.scheduler",
      [
        tc "trivial processes" `Quick test_scheduler_trivial;
        tc "one winner under all adversaries" `Quick
          test_one_winner_under_all_adversaries;
        tc "determinism" `Quick test_determinism_same_seed;
        tc "seeds differ" `Quick test_different_seeds_differ;
        tc "step limit" `Quick test_step_limit;
        tc "sequential runner" `Quick test_sequential_runner;
        tc "sequential unshuffled" `Quick test_sequential_unshuffled_order;
        tc "crash adversary" `Quick test_crash_adversary;
        tc "crash fraction zero" `Quick test_crash_fraction_zero;
        tc "crash invalid fraction" `Quick test_crash_invalid_fraction;
        tc "adversary by name" `Quick test_adversary_by_name;
        tc "greedy hurts uniform" `Quick test_greedy_hurts_uniform;
        tc "events match steps" `Quick test_event_stream_counts_match_steps;
        tc "layered runs rebatching" `Quick test_layered_adversary_runs_rebatching;
        tc "point contention tracking" `Quick test_point_contention_tracking;
        tc "round robin fairness" `Quick test_round_robin_fairness;
        QCheck_alcotest.to_alcotest
          qcheck_sequential_adversary_equals_sequential_runner;
      ] );
  ]
