(* Tests for lib/lowerbound: coupling gadget, marking dynamics, theory
   formulas, direct layered execution. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let float_close ?(eps = 1e-9) msg a b =
  if Float.abs (a -. b) > eps then
    Alcotest.failf "%s: %.12g <> %.12g (eps %.1g)" msg a b eps

(* ------------------------------------------------------------------ *)
(* Coupling *)

let test_gamma_of () =
  (* min(l^2/4, l/4): quadratic below 1, linear above *)
  float_close "small" 0.0625 (Lowerbound.Coupling.gamma_of 0.5);
  float_close "at 1" 0.25 (Lowerbound.Coupling.gamma_of 1.);
  float_close "large" 2. (Lowerbound.Coupling.gamma_of 8.);
  Alcotest.check_raises "negative" (Invalid_argument "Coupling.gamma_of: negative rate")
    (fun () -> ignore (Lowerbound.Coupling.gamma_of (-1.)))

let test_lemma_6_5_grid () =
  (* Lemma 6.5 claims P_lambda(n+1) <= P_gamma(n) for all n, lambda. *)
  List.iter
    (fun lambda ->
      for n = 0 to 100 do
        if not (Lowerbound.Coupling.lemma_6_5_holds ~lambda ~n) then
          Alcotest.failf "violated at lambda=%f n=%d" lambda n
      done)
    [ 0.01; 0.1; 0.3; 0.7; 1.0; 1.5; 2.0; 5.0; 10.0; 25.0; 50.0 ]

let test_sample_marked_bounds () =
  let rng = Prng.Splitmix.of_int 7 in
  List.iter
    (fun lambda ->
      for z = 0 to 20 do
        for _ = 1 to 50 do
          let y = Lowerbound.Coupling.sample_marked rng ~lambda ~z in
          if y < 0 || y > max 0 (z - 1) then
            Alcotest.failf "y=%d out of range for z=%d lambda=%f" y z lambda
        done
      done)
    [ 0.1; 1.0; 4.0; 16.0 ]

let test_sample_marked_zero_cases () =
  let rng = Prng.Splitmix.of_int 8 in
  checki "z=0" 0 (Lowerbound.Coupling.sample_marked rng ~lambda:3. ~z:0);
  checki "z=1" 0 (Lowerbound.Coupling.sample_marked rng ~lambda:3. ~z:1);
  Alcotest.check_raises "negative z"
    (Invalid_argument "Coupling.sample_marked: negative count") (fun () ->
      ignore (Lowerbound.Coupling.sample_marked rng ~lambda:1. ~z:(-1)))

let test_sample_marked_conditional_mean () =
  (* Summing the conditional samples over Z drawn from Pois(lambda) must
     recover E[Y] = gamma approximately. *)
  let rng = Prng.Splitmix.of_int 9 in
  let lambda = 4.0 in
  let trials = 30_000 in
  let sum = ref 0 in
  for _ = 1 to trials do
    let z = Prng.Dist.poisson_sample rng ~lambda in
    sum := !sum + Lowerbound.Coupling.sample_marked rng ~lambda ~z
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  let gamma = Lowerbound.Coupling.gamma_of lambda in
  if Float.abs (mean -. gamma) > 0.05 then
    Alcotest.failf "conditional mean %f vs gamma %f" mean gamma

let test_joint_sample_properties () =
  let rng = Prng.Splitmix.of_int 10 in
  for _ = 1 to 5000 do
    let z, y = Lowerbound.Coupling.joint_sample rng ~lambda:2.5 in
    if y > max 0 (z - 1) then Alcotest.failf "joint violation z=%d y=%d" z y
  done

let qcheck_lemma_6_5 =
  QCheck.Test.make ~name:"lemma 6.5 CDF domination holds everywhere" ~count:500
    QCheck.(pair (float_range 0.001 60.) (int_range 0 150))
    (fun (lambda, n) -> Lowerbound.Coupling.lemma_6_5_holds ~lambda ~n)

let qcheck_coupled_domination =
  QCheck.Test.make ~name:"coupled Y <= max(0, Z-1) always" ~count:1000
    QCheck.(pair small_int (float_range 0.01 30.))
    (fun (seed, lambda) ->
      let rng = Prng.Splitmix.of_int seed in
      let z, y = Lowerbound.Coupling.joint_sample rng ~lambda in
      y >= 0 && y <= max 0 (z - 1))

(* ------------------------------------------------------------------ *)
(* Theory *)

let test_rate_recursion () =
  (* lambda <= s/2: quadratic branch *)
  float_close "quadratic" (100. *. 100. /. 4000.)
    (Lowerbound.Theory.rate_recursion_lower_bound ~s:1000 ~lambda:100.);
  (* lambda > s/2: linear branch *)
  float_close "linear" 200.
    (Lowerbound.Theory.rate_recursion_lower_bound ~s:1000 ~lambda:800.);
  Alcotest.check_raises "bad s"
    (Invalid_argument "Theory.rate_recursion_lower_bound: s must be >= 1")
    (fun () ->
      ignore (Lowerbound.Theory.rate_recursion_lower_bound ~s:0 ~lambda:1.))

let test_ratio_series () =
  let s = Lowerbound.Theory.ratio_series ~r0:0.125 ~layers:3 in
  checki "length" 4 (Array.length s);
  float_close "r0" 0.125 s.(0);
  float_close "r1" (0.125 ** 2. /. 4.) s.(1);
  float_close "r2" (s.(1) ** 2. /. 4.) s.(2);
  Alcotest.check_raises "negative layers"
    (Invalid_argument "Theory.ratio_series: negative layer count") (fun () ->
      ignore (Lowerbound.Theory.ratio_series ~r0:0.1 ~layers:(-1)))

let test_predicted_layers_monotone () =
  (* More processes (same geometry ratio) must survive at least as long. *)
  let p n = Lowerbound.Theory.predicted_layers ~n ~s:(2 * n) ~m:(2 * n) in
  let prev = ref (p 64) in
  List.iter
    (fun n ->
      let v = p n in
      checkb (Printf.sprintf "monotone at %d" n) true (v >= !prev);
      prev := v)
    [ 256; 1024; 4096; 16384 ]

let test_predicted_layers_invalid () =
  Alcotest.check_raises "r0 >= 1"
    (Invalid_argument "Theory.predicted_layers: r0 must be < 1") (fun () ->
      ignore (Lowerbound.Theory.predicted_layers ~n:100 ~s:10 ~m:10))

let test_survival_probability () =
  let p = Lowerbound.Theory.survival_probability_bound () in
  checkb "around 0.2317" true (p > 0.2316 && p < 0.2318)

(* ------------------------------------------------------------------ *)
(* Marking simulation *)

let test_marking_deterministic () =
  let config = Lowerbound.Marking.default_config ~n:1024 in
  let a = Lowerbound.Marking.run ~seed:5 config in
  let b = Lowerbound.Marking.run ~seed:5 config in
  checki "same layers" (Lowerbound.Marking.layers_survived a)
    (Lowerbound.Marking.layers_survived b);
  checkb "same series" true (a.series = b.series)

let test_marking_initial_rate () =
  let config = Lowerbound.Marking.default_config ~n:4096 in
  let r = Lowerbound.Marking.run ~seed:1 config in
  let first = r.series.(0) in
  float_close ~eps:1e-6 "initial rate n/2" 2048. first.rate;
  (* realized count is Pois(n/2): within 6 sigma of the mean *)
  checkb "initial marked plausible" true
    (abs (first.marked - 2048) < 6 * 46)

let test_marking_counts_decrease () =
  let config = Lowerbound.Marking.default_config ~n:4096 in
  let r = Lowerbound.Marking.run ~seed:3 config in
  let prev = ref max_int in
  Array.iter
    (fun (ls : Lowerbound.Marking.layer_stats) ->
      checkb "non-increasing" true (ls.marked <= !prev);
      prev := ls.marked)
    r.series

let test_marking_rate_recursion_respected () =
  (* Lemma 6.6: realized rate_{l+1} >= bound(rate_l), deterministically in
     our faithful implementation. *)
  let config = Lowerbound.Marking.default_config ~n:8192 in
  let r = Lowerbound.Marking.run ~seed:11 config in
  for l = 1 to Array.length r.series - 1 do
    let prev = r.series.(l - 1).rate in
    let bound =
      Lowerbound.Theory.rate_recursion_lower_bound ~s:config.locations ~lambda:prev
    in
    if r.series.(l).rate < bound -. 1e-6 then
      Alcotest.failf "layer %d: rate %f < bound %f" l r.series.(l).rate bound
  done

let test_marking_survival_grows () =
  (* Mean survival at n=65536 must be at least that at n=64 (log log
     growth is slow but weakly monotone over this span). *)
  let mean_survival n =
    let config = Lowerbound.Marking.default_config ~n in
    let total = ref 0 in
    for seed = 1 to 10 do
      total :=
        !total + Lowerbound.Marking.layers_survived (Lowerbound.Marking.run ~seed config)
    done;
    float_of_int !total /. 10.
  in
  let small = mean_survival 64 and large = mean_survival 65536 in
  checkb
    (Printf.sprintf "survival %f (n=64) <= %f (n=65536)" small large)
    true (small <= large)

let test_marking_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Marking.run: n must be >= 1")
    (fun () ->
      ignore
        (Lowerbound.Marking.run ~seed:1
           { Lowerbound.Marking.n = 0; locations = 4; max_layers = 4 }))

(* ------------------------------------------------------------------ *)
(* Layered execution *)

let test_layered_terminates_uniform () =
  let r =
    Lowerbound.Layered_exec.run ~seed:1 ~n:1000 ~s:4000 Lowerbound.Layered_exec.Uniform
  in
  checkb "few layers" true (r.layers <= 10);
  checki "history length" (r.layers + 1) (Array.length r.survivors_per_layer);
  checki "starts at n" 1000 r.survivors_per_layer.(0);
  checki "ends empty" 0 r.survivors_per_layer.(r.layers)

let test_layered_fixed_family () =
  (* 10 processes all mapped to the same location: one wins per layer. *)
  let r = Lowerbound.Layered_exec.run ~seed:2 ~n:10 ~s:1 Lowerbound.Layered_exec.Fixed in
  checki "layers = n" 10 r.layers;
  checki "probes = 10+9+...+1" 55 r.total_probes

let test_layered_single_process () =
  let r =
    Lowerbound.Layered_exec.run ~seed:3 ~n:1 ~s:10 Lowerbound.Layered_exec.Uniform
  in
  checki "one layer" 1 r.layers;
  checki "one probe" 1 r.total_probes

let test_layered_survivor_shrinkage () =
  (* With s = 4n, survivors after one layer should be ~ n^2/(2s) = n/8 —
     doubly-exponential decay kicks in from there. *)
  let n = 8192 in
  let r =
    Lowerbound.Layered_exec.run ~seed:4 ~n ~s:(4 * n) Lowerbound.Layered_exec.Uniform
  in
  let after_one = r.survivors_per_layer.(1) in
  checkb
    (Printf.sprintf "survivors after layer 1: %d ~ n/8 = %d" after_one (n / 8))
    true
    (after_one > n / 16 && after_one < n / 4)

let test_layered_growth_shape () =
  (* layers(n=65536) - layers(n=64) should be small (log log gap ~ 1.7) *)
  let mean n =
    let total = ref 0 in
    for seed = 1 to 10 do
      total :=
        !total
        + (Lowerbound.Layered_exec.run ~seed ~n ~s:(4 * n)
             Lowerbound.Layered_exec.Uniform)
            .layers
    done;
    float_of_int !total /. 10.
  in
  let small = mean 64 and large = mean 65536 in
  checkb "grows" true (large >= small);
  checkb "grows slowly (loglog, not log)" true (large -. small < 4.)

let test_layered_types_basic () =
  (* three types, two of which always collide on target 0 *)
  let types = [| [| 0; 1 |]; [| 0; 2 |]; [| 5; 3 |] |] in
  let r = Lowerbound.Layered_exec.run_with_types ~seed:1 ~types ~s:6 () in
  (* layer 1: targets 0,0,5 -> one of the two 0-probers survives; layer 2:
     it wins its distinct second target *)
  Alcotest.(check int) "two layers" 2 r.layers;
  Alcotest.(check int) "probes 3+1" 4 r.total_probes

let test_layered_types_exhaustion () =
  (* a type with no probes leaves immediately *)
  let types = [| [||]; [| 0 |] |] in
  let r = Lowerbound.Layered_exec.run_with_types ~seed:2 ~types ~s:1 () in
  Alcotest.(check int) "one layer" 1 r.layers;
  Alcotest.(check int) "one probe" 1 r.total_probes

let test_layered_types_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Layered_exec.run_with_types: no types") (fun () ->
      ignore (Lowerbound.Layered_exec.run_with_types ~seed:1 ~types:[||] ~s:1 ()));
  Alcotest.check_raises "target range"
    (Invalid_argument "Layered_exec.run_with_types: target out of range")
    (fun () ->
      ignore
        (Lowerbound.Layered_exec.run_with_types ~seed:1 ~types:[| [| 5 |] |] ~s:2 ()))

let qcheck_layered_types_matches_uniform =
  (* feeding uniform targets through run_with_types must behave like the
     Uniform family statistically; check the basic invariants *)
  QCheck.Test.make ~name:"run_with_types conserves processes" ~count:50
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let rng = Prng.Splitmix.of_int (seed + 17) in
      let s = 2 * n in
      let types =
        Array.init n (fun _ -> Array.init 16 (fun _ -> Prng.Splitmix.int rng s))
      in
      let r = Lowerbound.Layered_exec.run_with_types ~seed ~types ~s () in
      r.survivors_per_layer.(0) = n
      && r.survivors_per_layer.(r.layers) = 0
      && r.layers <= 16 + 1)

let test_layered_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Layered_exec.run: n must be >= 1")
    (fun () ->
      ignore (Lowerbound.Layered_exec.run ~seed:1 ~n:0 ~s:1 Lowerbound.Layered_exec.Uniform))

let qcheck_layered_conservation =
  QCheck.Test.make ~name:"layered game: winners + survivors account for n" ~count:50
    QCheck.(pair small_int (int_range 1 500))
    (fun (seed, n) ->
      let r =
        Lowerbound.Layered_exec.run ~seed ~n ~s:(2 * n) Lowerbound.Layered_exec.Uniform
      in
      (* survivor counts strictly decrease to 0 and probes = sum of
         survivors over layers *)
      let sum = Array.fold_left ( + ) 0 r.survivors_per_layer in
      sum - r.survivors_per_layer.(r.layers) = r.total_probes
      && r.survivors_per_layer.(0) = n)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "lowerbound.coupling",
      [
        tc "gamma_of" `Quick test_gamma_of;
        tc "lemma 6.5 grid" `Quick test_lemma_6_5_grid;
        tc "sample_marked bounds" `Quick test_sample_marked_bounds;
        tc "sample_marked zero cases" `Quick test_sample_marked_zero_cases;
        tc "conditional mean" `Slow test_sample_marked_conditional_mean;
        tc "joint sample" `Quick test_joint_sample_properties;
        QCheck_alcotest.to_alcotest qcheck_lemma_6_5;
        QCheck_alcotest.to_alcotest qcheck_coupled_domination;
      ] );
    ( "lowerbound.theory",
      [
        tc "rate recursion" `Quick test_rate_recursion;
        tc "ratio series" `Quick test_ratio_series;
        tc "predicted layers monotone" `Quick test_predicted_layers_monotone;
        tc "predicted layers invalid" `Quick test_predicted_layers_invalid;
        tc "survival probability" `Quick test_survival_probability;
      ] );
    ( "lowerbound.marking",
      [
        tc "deterministic" `Quick test_marking_deterministic;
        tc "initial rate" `Quick test_marking_initial_rate;
        tc "counts decrease" `Quick test_marking_counts_decrease;
        tc "rate recursion respected" `Quick test_marking_rate_recursion_respected;
        tc "survival grows" `Slow test_marking_survival_grows;
        tc "invalid" `Quick test_marking_invalid;
      ] );
    ( "lowerbound.layered_exec",
      [
        tc "terminates uniform" `Quick test_layered_terminates_uniform;
        tc "fixed family" `Quick test_layered_fixed_family;
        tc "single process" `Quick test_layered_single_process;
        tc "survivor shrinkage" `Quick test_layered_survivor_shrinkage;
        tc "growth shape" `Slow test_layered_growth_shape;
        tc "invalid" `Quick test_layered_invalid;
        tc "explicit types basic" `Quick test_layered_types_basic;
        tc "explicit types exhaustion" `Quick test_layered_types_exhaustion;
        tc "explicit types invalid" `Quick test_layered_types_invalid;
        QCheck_alcotest.to_alcotest qcheck_layered_conservation;
        QCheck_alcotest.to_alcotest qcheck_layered_types_matches_uniform;
      ] );
  ]
