(* Tests for the baseline renaming strategies. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Uniform probing *)

let test_uniform_unique () =
  let algo env = Baselines.Uniform_probe.get_name env ~m:256 ~max_steps:100_000 in
  let res = Sim.Runner.run ~seed:1 ~n:128 ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names res);
  checkb "in range" true (Sim.Runner.max_name res < 256)

let test_uniform_gives_up () =
  (* 2 processes, 1 location: the loser hits max_steps and returns None. *)
  let algo env = Baselines.Uniform_probe.get_name env ~m:1 ~max_steps:10 in
  let res = Sim.Runner.run ~seed:2 ~n:2 ~algo () in
  let somes =
    Array.fold_left (fun acc v -> if v <> None then acc + 1 else acc) 0 res.names
  in
  checki "one winner" 1 somes;
  (* the loser probed exactly max_steps times (plus nothing else) *)
  let loser_steps = Array.fold_left max 0 res.steps in
  checki "loser exhausted budget" 10 loser_steps

let test_uniform_invalid () =
  let env =
    Renaming.Env.make ~pid:0 ~tas:(fun _ -> true) ~random_int:(fun _ -> 0) ()
  in
  Alcotest.check_raises "m=0" (Invalid_argument "Uniform_probe.get_name: m must be >= 1")
    (fun () -> ignore (Baselines.Uniform_probe.get_name env ~m:0 ~max_steps:1));
  Alcotest.check_raises "max_steps=0"
    (Invalid_argument "Uniform_probe.get_name: max_steps must be >= 1") (fun () ->
      ignore (Baselines.Uniform_probe.get_name env ~m:1 ~max_steps:0))

let test_uniform_needs_more_steps_than_rebatching () =
  (* The log n vs log log n separation, in miniature: at n = 1024,
     uniform probing's worst process should take more probes than
     ReBatching's (whose bound is t0 + kappa - 1 + beta). *)
  let n = 1024 in
  let uniform env = Baselines.Uniform_probe.get_name env ~m:(2 * n) ~max_steps:100_000 in
  let r = Renaming.Rebatching.make ~t0:3 ~n () in
  let rebatching env = Renaming.Rebatching.get_name env r in
  let worst algo seed = (Sim.Runner.run_sequential ~seed ~n ~algo ()).max_steps in
  let sum_u = ref 0 and sum_r = ref 0 in
  for seed = 1 to 5 do
    sum_u := !sum_u + worst uniform seed;
    sum_r := !sum_r + worst rebatching (seed + 50)
  done;
  checkb
    (Printf.sprintf "uniform worst (%d) > rebatching-tuned worst (%d)" !sum_u !sum_r)
    true (!sum_u > !sum_r)

(* ------------------------------------------------------------------ *)
(* Linear scan *)

let test_linear_scan_tight_namespace () =
  let algo env = Baselines.Linear_scan.get_name env ~m:1000 in
  let res = Sim.Runner.run ~seed:3 ~n:100 ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names res);
  (* tight renaming: names are < k *)
  checkb "names < k" true (Sim.Runner.max_name res < 100)

let test_linear_scan_sequential_identity () =
  let algo env = Baselines.Linear_scan.get_name env ~m:50 in
  let res = Sim.Runner.run_sequential ~shuffled:false ~seed:4 ~n:20 ~algo () in
  Array.iteri
    (fun pid name -> checkb "name = arrival rank" true (name = Some pid))
    res.names

let test_linear_scan_exhausted () =
  let env =
    Renaming.Env.make ~pid:0 ~tas:(fun _ -> false) ~random_int:(fun _ -> 0) ()
  in
  checkb "None when all taken" true (Baselines.Linear_scan.get_name env ~m:5 = None)

let test_linear_scan_under_adversaries () =
  List.iter
    (fun adv ->
      let algo env = Baselines.Linear_scan.get_name env ~m:200 in
      let res = Sim.Runner.run ~adversary:adv ~seed:5 ~n:64 ~algo () in
      checkb (Printf.sprintf "%s unique" adv.Sim.Adversary.name) true
        (Sim.Runner.check_unique_names res))
    Sim.Adversary.all_builtin

(* ------------------------------------------------------------------ *)
(* Cyclic scan *)

let test_cyclic_scan_always_succeeds () =
  (* n processes, m >= n locations: a full cycle must find a free one. *)
  let algo env = Baselines.Cyclic_scan.get_name env ~m:128 in
  let res = Sim.Runner.run ~seed:6 ~n:128 ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names res);
  Array.iter (fun v -> checkb "all named" true (v <> None)) res.names

let test_cyclic_scan_wraps () =
  (* Force a wrap: start near the end with everything before taken. *)
  let taken = Array.make 8 false in
  let env =
    Renaming.Env.make ~pid:0
      ~tas:(fun loc ->
        if taken.(loc) then false
        else begin
          taken.(loc) <- true;
          true
        end)
      ~random_int:(fun _ -> 6)
      (* start at 6 *) ()
  in
  taken.(6) <- true;
  taken.(7) <- true;
  (* must wrap to location 0 *)
  checkb "wraps to 0" true (Baselines.Cyclic_scan.get_name env ~m:8 = Some 0)

let test_cyclic_average_better_than_uniform_max () =
  (* Cyclic scan has excellent average; sanity check it terminates fast. *)
  let algo env = Baselines.Cyclic_scan.get_name env ~m:512 in
  let res = Sim.Runner.run_sequential ~seed:7 ~n:256 ~algo () in
  let avg = float_of_int res.total_steps /. 256. in
  checkb (Printf.sprintf "average %.2f < 8" avg) true (avg < 8.)

(* ------------------------------------------------------------------ *)
(* Adaptive doubling *)

let test_doubling_unique () =
  let space = Renaming.Object_space.create () in
  let algo env = Baselines.Adaptive_doubling.get_name env space in
  let res = Sim.Runner.run ~seed:8 ~n:100 ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names res)

let test_doubling_name_linear () =
  List.iter
    (fun k ->
      let space = Renaming.Object_space.create () in
      let algo env = Baselines.Adaptive_doubling.get_name env space in
      let res = Sim.Runner.run ~seed:(300 + k) ~n:k ~algo () in
      checkb "unique" true (Sim.Runner.check_unique_names res);
      checkb
        (Printf.sprintf "k=%d name bound" k)
        true
        (Sim.Runner.max_name res <= (32 * k) + 64))
    [ 1; 4; 16; 64; 256 ]

let test_doubling_probes_param () =
  let space = Renaming.Object_space.create () in
  let env =
    Renaming.Env.make ~pid:0 ~tas:(fun _ -> true) ~random_int:(fun _ -> 0) ()
  in
  Alcotest.check_raises "probes=0"
    (Invalid_argument "Adaptive_doubling.get_name: probes_per_level must be >= 1")
    (fun () ->
      ignore (Baselines.Adaptive_doubling.get_name env ~probes_per_level:0 space))

let test_doubling_under_adversaries () =
  List.iter
    (fun adv ->
      let space = Renaming.Object_space.create () in
      let algo env = Baselines.Adaptive_doubling.get_name env space in
      let res = Sim.Runner.run ~adversary:adv ~seed:9 ~n:64 ~algo () in
      checkb (Printf.sprintf "%s unique" adv.Sim.Adversary.name) true
        (Sim.Runner.check_unique_names res))
    Sim.Adversary.all_builtin

let qcheck_all_baselines_unique =
  QCheck.Test.make ~name:"every baseline yields unique names" ~count:25
    QCheck.(pair small_int (int_range 1 120))
    (fun (seed, n) ->
      let strategies =
        [
          (fun env -> Baselines.Uniform_probe.get_name env ~m:(2 * n) ~max_steps:100_000);
          (fun env -> Baselines.Linear_scan.get_name env ~m:(2 * n));
          (fun env -> Baselines.Cyclic_scan.get_name env ~m:(2 * n));
        ]
      in
      List.for_all
        (fun algo ->
          let res = Sim.Runner.run ~seed ~n ~algo () in
          Sim.Runner.check_unique_names res)
        strategies)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "baselines.uniform",
      [
        tc "unique" `Quick test_uniform_unique;
        tc "gives up at budget" `Quick test_uniform_gives_up;
        tc "invalid args" `Quick test_uniform_invalid;
        tc "slower than tuned rebatching" `Quick
          test_uniform_needs_more_steps_than_rebatching;
      ] );
    ( "baselines.linear_scan",
      [
        tc "tight namespace" `Quick test_linear_scan_tight_namespace;
        tc "sequential identity" `Quick test_linear_scan_sequential_identity;
        tc "exhausted" `Quick test_linear_scan_exhausted;
        tc "under adversaries" `Quick test_linear_scan_under_adversaries;
      ] );
    ( "baselines.cyclic_scan",
      [
        tc "always succeeds" `Quick test_cyclic_scan_always_succeeds;
        tc "wraps" `Quick test_cyclic_scan_wraps;
        tc "fast on average" `Quick test_cyclic_average_better_than_uniform_max;
      ] );
    ( "baselines.adaptive_doubling",
      [
        tc "unique" `Quick test_doubling_unique;
        tc "name linear" `Quick test_doubling_name_linear;
        tc "probes param" `Quick test_doubling_probes_param;
        tc "under adversaries" `Quick test_doubling_under_adversaries;
        QCheck_alcotest.to_alcotest qcheck_all_baselines_unique;
      ] );
  ]
