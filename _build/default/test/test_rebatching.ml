(* Tests for the core ReBatching algorithm (paper §4, Figure 1). *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Geometry *)

let test_t0_formula () =
  (* eps = 1: ceil (17 ln (8e)) = ceil 52.34.. = 53 *)
  checki "eps=1" 53 (Renaming.Rebatching.t0_formula 1.0);
  (* monotone: smaller eps needs more probes *)
  checkb "monotone" true
    (Renaming.Rebatching.t0_formula 0.5 > Renaming.Rebatching.t0_formula 1.0);
  Alcotest.check_raises "eps=0"
    (Invalid_argument "Rebatching.t0_formula: epsilon must be > 0") (fun () ->
      ignore (Renaming.Rebatching.t0_formula 0.))

let test_geometry_n1024 () =
  let r = Renaming.Rebatching.make ~n:1024 () in
  checki "m" 2048 (Renaming.Rebatching.size r);
  (* kappa = ceil (log2 (log2 1024)) = ceil (log2 10) = 4 *)
  checki "kappa" 4 (Renaming.Rebatching.kappa r);
  checki "batches" 5 (Renaming.Rebatching.batch_count r);
  checki "b0" 1024 (Renaming.Rebatching.batch_size r 0);
  checki "b1" 512 (Renaming.Rebatching.batch_size r 1);
  checki "b2" 256 (Renaming.Rebatching.batch_size r 2);
  checki "b3" 128 (Renaming.Rebatching.batch_size r 3);
  checki "b4" 64 (Renaming.Rebatching.batch_size r 4);
  (* offsets are the prefix sums *)
  checki "off0" 0 (Renaming.Rebatching.batch_offset r 0);
  checki "off1" 1024 (Renaming.Rebatching.batch_offset r 1);
  checki "off4" 1920 (Renaming.Rebatching.batch_offset r 4);
  (* probe schedule: t0 = 53, middles = 1, last = beta = 3 *)
  checki "t0" 53 (Renaming.Rebatching.probe_budget r 0);
  checki "t1" 1 (Renaming.Rebatching.probe_budget r 1);
  checki "t3" 1 (Renaming.Rebatching.probe_budget r 3);
  checki "t_kappa" 3 (Renaming.Rebatching.probe_budget r 4)

let test_geometry_epsilon_small () =
  let r = Renaming.Rebatching.make ~epsilon:0.5 ~n:1000 () in
  checki "m" 1500 (Renaming.Rebatching.size r);
  checki "b0 = ceil(eps n)" 500 (Renaming.Rebatching.batch_size r 0)

let test_geometry_fits () =
  (* For a wide range of n, the batches must fit inside m. *)
  List.iter
    (fun n ->
      let r = Renaming.Rebatching.make ~n () in
      let total = ref 0 in
      for i = 0 to Renaming.Rebatching.kappa r do
        total := !total + Renaming.Rebatching.batch_size r i
      done;
      checkb (Printf.sprintf "n=%d fits" n) true (!total <= Renaming.Rebatching.size r);
      (* offsets + sizes are consistent *)
      for i = 1 to Renaming.Rebatching.kappa r do
        checki
          (Printf.sprintf "offset %d" i)
          (Renaming.Rebatching.batch_offset r (i - 1)
          + Renaming.Rebatching.batch_size r (i - 1))
          (Renaming.Rebatching.batch_offset r i)
      done)
    [ 1; 2; 3; 4; 5; 7; 8; 16; 100; 1000; 65536; 1_000_000 ]

let test_geometry_base_shift () =
  let r = Renaming.Rebatching.make ~base:500 ~n:64 () in
  checki "base" 500 (Renaming.Rebatching.base r);
  checki "first batch at base" 500 (Renaming.Rebatching.batch_offset r 0);
  checkb "owns its base" true (Renaming.Rebatching.owns_name r 500);
  checkb "owns last" true
    (Renaming.Rebatching.owns_name r (500 + Renaming.Rebatching.size r - 1));
  checkb "not below" false (Renaming.Rebatching.owns_name r 499);
  checkb "not above" false
    (Renaming.Rebatching.owns_name r (500 + Renaming.Rebatching.size r))

let test_geometry_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Rebatching.make: n must be >= 1")
    (fun () -> ignore (Renaming.Rebatching.make ~n:0 ()));
  Alcotest.check_raises "eps<=0"
    (Invalid_argument "Rebatching.make: epsilon must be > 0") (fun () ->
      ignore (Renaming.Rebatching.make ~epsilon:0. ~n:4 ()));
  Alcotest.check_raises "beta=0" (Invalid_argument "Rebatching.make: beta must be >= 1")
    (fun () -> ignore (Renaming.Rebatching.make ~beta:0 ~n:4 ()));
  Alcotest.check_raises "t0=0" (Invalid_argument "Rebatching.make: t0 must be >= 1")
    (fun () -> ignore (Renaming.Rebatching.make ~t0:0 ~n:4 ()));
  let r = Renaming.Rebatching.make ~n:16 () in
  Alcotest.check_raises "bad batch"
    (Invalid_argument "Rebatching: batch index out of range") (fun () ->
      ignore (Renaming.Rebatching.batch_size r 99))

let test_t0_override () =
  let r = Renaming.Rebatching.make ~t0:5 ~n:256 () in
  checki "t0 override" 5 (Renaming.Rebatching.probe_budget r 0)

let test_beta_override () =
  let r = Renaming.Rebatching.make ~beta:7 ~n:256 () in
  checki "beta override" 7
    (Renaming.Rebatching.probe_budget r (Renaming.Rebatching.kappa r))

let test_tiny_instances () =
  (* n = 1, 2, 3 must construct and run. *)
  List.iter
    (fun n ->
      let r = Renaming.Rebatching.make ~n () in
      let algo env = Renaming.Rebatching.get_name env r in
      let res = Sim.Runner.run ~seed:1 ~n ~algo () in
      checkb (Printf.sprintf "n=%d unique" n) true (Sim.Runner.check_unique_names res))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Behaviour *)

let run_rebatching ?adversary ?on_event ~seed ~n () =
  let r = Renaming.Rebatching.make ~n () in
  let algo env = Renaming.Rebatching.get_name env r in
  (Sim.Runner.run ?adversary ?on_event ~seed ~n ~algo (), r)

let test_all_get_unique_names () =
  let res, r = run_rebatching ~seed:42 ~n:500 () in
  checkb "unique" true (Sim.Runner.check_unique_names res);
  checkb "names in namespace" true
    (Array.for_all
       (function Some u -> Renaming.Rebatching.owns_name r u | None -> false)
       res.names)

let test_unique_under_every_adversary () =
  List.iter
    (fun adv ->
      let res, _ = run_rebatching ~adversary:adv ~seed:9 ~n:200 () in
      checkb (Printf.sprintf "%s unique" adv.Sim.Adversary.name) true
        (Sim.Runner.check_unique_names res))
    Sim.Adversary.all_builtin

let test_step_complexity_reasonable () =
  (* With the paper constants the bound is t0 + (kappa-1) + beta probes
     unless the backup phase triggers (w.h.p. it does not). *)
  let res, r = run_rebatching ~seed:4 ~n:4096 () in
  let bound =
    Renaming.Rebatching.probe_budget r 0
    + Renaming.Rebatching.kappa r - 1
    + Renaming.Rebatching.probe_budget r (Renaming.Rebatching.kappa r)
  in
  checkb
    (Printf.sprintf "max steps %d <= %d" res.max_steps bound)
    true (res.max_steps <= bound)

let test_no_backup_at_scale () =
  let backups = ref 0 in
  let on_event ~pid:_ = function
    | Renaming.Events.Backup_entered _ -> incr backups
    | _ -> ()
  in
  let _ = run_rebatching ~on_event ~seed:5 ~n:4096 () in
  checki "no backup" 0 !backups

let test_overload_uses_backup () =
  (* Run 2n processes against an instance sized for n: m = 2n names exist,
     so everyone must still succeed, many through the backup scan. *)
  let r = Renaming.Rebatching.make ~n:8 () in
  let backups = ref 0 in
  let on_event ~pid:_ = function
    | Renaming.Events.Backup_entered _ -> incr backups
    | _ -> ()
  in
  let algo env = Renaming.Rebatching.get_name env r in
  let res = Sim.Runner.run ~on_event ~seed:6 ~n:16 ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names res);
  checkb "some backup happened" true (!backups >= 0)

let test_saturated_instance () =
  (* Exactly m processes on an instance of size m: every name gets used,
     still unique, still all succeed. *)
  let r = Renaming.Rebatching.make ~n:8 () in
  let m = Renaming.Rebatching.size r in
  let algo env = Renaming.Rebatching.get_name env r in
  let res = Sim.Runner.run ~seed:7 ~n:m ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names res);
  let names = List.sort compare (Array.to_list res.names) in
  Alcotest.(check (list (option int)))
    "all m names assigned"
    (List.init m (fun i -> Some i))
    names

let test_oversaturated_returns_none () =
  (* m+1 processes on m names: exactly one process must get None even with
     backup. *)
  let r = Renaming.Rebatching.make ~n:4 () in
  let m = Renaming.Rebatching.size r in
  let algo env = Renaming.Rebatching.get_name env r in
  let res = Sim.Runner.run ~seed:8 ~n:(m + 1) ~algo () in
  let nones =
    Array.fold_left (fun acc v -> if v = None then acc + 1 else acc) 0 res.names
  in
  checki "exactly one None" 1 nones

let test_no_backup_mode () =
  (* With backup disabled and heavy overload, failures are possible, but
     winners remain unique. *)
  let r = Renaming.Rebatching.make ~t0:1 ~n:2 () in
  let algo env = Renaming.Rebatching.get_name ~backup:false env r in
  let res = Sim.Runner.run ~seed:9 ~n:32 ~algo () in
  let seen = Hashtbl.create 16 in
  Array.iter
    (function
      | Some u ->
        checkb "no duplicate" true (not (Hashtbl.mem seen u));
        Hashtbl.replace seen u ()
      | None -> ())
    res.names

let test_events_name_matches_return () =
  let names_by_event = Hashtbl.create 64 in
  let on_event ~pid e =
    match e with
    | Renaming.Events.Name_acquired { name; _ } ->
      Hashtbl.replace names_by_event pid name
    | _ -> ()
  in
  let res, _ = run_rebatching ~on_event ~seed:10 ~n:100 () in
  Array.iteri
    (fun pid name ->
      match name with
      | Some u -> checki "event matches" u (Hashtbl.find names_by_event pid)
      | None -> Alcotest.fail "missing name")
    res.names

let test_probe_locations_in_claimed_batch () =
  (* Every probe event must target a location inside the batch it claims. *)
  let r = Renaming.Rebatching.make ~n:256 () in
  let ok = ref true in
  let on_event ~pid:_ = function
    | Renaming.Events.Probe { batch; location; _ } when batch >= 0 ->
      let off = Renaming.Rebatching.batch_offset r batch in
      let size = Renaming.Rebatching.batch_size r batch in
      if location < off || location >= off + size then ok := false
    | _ -> ()
  in
  let algo env = Renaming.Rebatching.get_name env r in
  let _ = Sim.Runner.run ~on_event ~seed:11 ~n:256 ~algo () in
  checkb "probes in range" true !ok

let test_total_steps_linear () =
  (* Theorem 4.1: total steps O(n); with paper constants the dominant term
     is t0 * n.  Check total <= (t0 + beta + kappa) * n as a loose cap. *)
  let res, r = run_rebatching ~seed:12 ~n:2048 () in
  let cap =
    (Renaming.Rebatching.probe_budget r 0
    + Renaming.Rebatching.kappa r
    + Renaming.Rebatching.probe_budget r (Renaming.Rebatching.kappa r))
    * 2048
  in
  checkb "total linear" true (res.total_steps <= cap)

let qcheck_uniqueness =
  QCheck.Test.make ~name:"rebatching names always unique and in range" ~count:60
    QCheck.(pair small_int (int_range 1 300))
    (fun (seed, n) ->
      let r = Renaming.Rebatching.make ~n () in
      let algo env = Renaming.Rebatching.get_name env r in
      let res = Sim.Runner.run ~seed ~n ~algo () in
      Sim.Runner.check_unique_names res
      && Sim.Runner.max_name res < Renaming.Rebatching.size r)

let qcheck_uniqueness_greedy =
  QCheck.Test.make ~name:"rebatching unique under greedy adversary" ~count:30
    QCheck.(pair small_int (int_range 1 150))
    (fun (seed, n) ->
      let r = Renaming.Rebatching.make ~n () in
      let algo env = Renaming.Rebatching.get_name env r in
      let res =
        Sim.Runner.run ~adversary:Sim.Adversary.greedy_collision ~seed ~n ~algo ()
      in
      Sim.Runner.check_unique_names res)

let qcheck_sequential_matches_model =
  QCheck.Test.make ~name:"sequential runs assign n distinct names" ~count:50
    QCheck.(pair small_int (int_range 1 400))
    (fun (seed, n) ->
      let r = Renaming.Rebatching.make ~n () in
      let algo env = Renaming.Rebatching.get_name env r in
      let res = Sim.Runner.run_sequential ~seed ~n ~algo () in
      Sim.Runner.check_unique_names res)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "rebatching.geometry",
      [
        tc "t0 formula" `Quick test_t0_formula;
        tc "n=1024 geometry" `Quick test_geometry_n1024;
        tc "small epsilon" `Quick test_geometry_epsilon_small;
        tc "fits for many n" `Quick test_geometry_fits;
        tc "base shift" `Quick test_geometry_base_shift;
        tc "invalid params" `Quick test_geometry_invalid;
        tc "t0 override" `Quick test_t0_override;
        tc "beta override" `Quick test_beta_override;
        tc "tiny instances" `Quick test_tiny_instances;
      ] );
    ( "rebatching.behaviour",
      [
        tc "all unique names" `Quick test_all_get_unique_names;
        tc "unique under every adversary" `Quick test_unique_under_every_adversary;
        tc "step complexity" `Quick test_step_complexity_reasonable;
        tc "no backup at scale" `Quick test_no_backup_at_scale;
        tc "overload uses backup" `Quick test_overload_uses_backup;
        tc "saturated instance" `Quick test_saturated_instance;
        tc "oversaturated returns None" `Quick test_oversaturated_returns_none;
        tc "no-backup mode" `Quick test_no_backup_mode;
        tc "events match returns" `Quick test_events_name_matches_return;
        tc "probes stay in batch" `Quick test_probe_locations_in_claimed_batch;
        tc "total steps linear" `Quick test_total_steps_linear;
        QCheck_alcotest.to_alcotest qcheck_uniqueness;
        QCheck_alcotest.to_alcotest qcheck_uniqueness_greedy;
        QCheck_alcotest.to_alcotest qcheck_sequential_matches_model;
      ] );
  ]
