(* Tests for schedule traces (record/replay) and arrival patterns, plus
   the bootstrap CI module. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let rebatching_algo n =
  let instance = Renaming.Rebatching.make ~t0:3 ~n () in
  fun env -> Renaming.Rebatching.get_name env instance

(* ------------------------------------------------------------------ *)
(* Trace record / replay *)

let test_record_replay_identical () =
  let n = 64 in
  let algo = rebatching_algo n in
  let recorder, extract = Sim.Trace.recorder Sim.Adversary.random in
  let original = Sim.Runner.run ~adversary:recorder ~seed:5 ~n ~algo () in
  let trace = extract () in
  checki "trace covers every step" original.total_steps (Sim.Trace.length trace);
  let replayed =
    Sim.Runner.run ~adversary:(Sim.Trace.replayer trace) ~seed:5 ~n ~algo ()
  in
  Alcotest.(check (array (option int))) "same names" original.names replayed.names;
  Alcotest.(check (array int)) "same step counts" original.steps replayed.steps;
  checki "same total" original.total_steps replayed.total_steps

let test_record_replay_greedy () =
  (* Replaying an adaptive strategy's schedule with an oblivious replayer
     must still reproduce the run exactly. *)
  let n = 48 in
  let algo = rebatching_algo n in
  let recorder, extract = Sim.Trace.recorder Sim.Adversary.greedy_collision in
  let original = Sim.Runner.run ~adversary:recorder ~seed:9 ~n ~algo () in
  let replayed =
    Sim.Runner.run
      ~adversary:(Sim.Trace.replayer (extract ()))
      ~seed:9 ~n ~algo ()
  in
  Alcotest.(check (array (option int))) "same names" original.names replayed.names

let test_record_crashes () =
  let n = 40 in
  let algo = rebatching_algo n in
  let inner = Sim.Adversary.with_crashes ~fraction:0.3 Sim.Adversary.random in
  let recorder, extract = Sim.Trace.recorder inner in
  let original = Sim.Runner.run ~adversary:recorder ~seed:11 ~n ~algo () in
  let trace = extract () in
  let crash_decisions =
    List.length
      (List.filter
         (function Sim.Trace.Crashed_pid _ -> true | Sim.Trace.Stepped _ -> false)
         (Sim.Trace.decisions trace))
  in
  checki "crashes recorded" original.crash_count crash_decisions;
  let replayed =
    Sim.Runner.run ~adversary:(Sim.Trace.replayer trace) ~seed:11 ~n ~algo ()
  in
  checki "crashes replayed" original.crash_count replayed.crash_count;
  Alcotest.(check (array bool)) "same crash set" original.crashed replayed.crashed

let test_replay_exhausted_falls_back () =
  (* An empty trace must still complete the run (fallback stepping). *)
  let n = 16 in
  let algo = rebatching_algo n in
  let empty = Sim.Trace.random_trace (Prng.Splitmix.of_int 1) ~n ~steps:0 in
  let r = Sim.Runner.run ~adversary:(Sim.Trace.replayer empty) ~seed:2 ~n ~algo () in
  checkb "completes and unique" true (Sim.Runner.check_unique_names r)

let test_random_trace_as_fuzz () =
  (* Random traces are valid oblivious schedules: uniqueness must hold
     under any of them. *)
  let n = 32 in
  let algo = rebatching_algo n in
  let rng = Prng.Splitmix.of_int 77 in
  for _ = 1 to 10 do
    let trace = Sim.Trace.random_trace rng ~n ~steps:500 in
    let r =
      Sim.Runner.run ~adversary:(Sim.Trace.replayer trace) ~seed:3 ~n ~algo ()
    in
    checkb "unique under fuzzed schedule" true (Sim.Runner.check_unique_names r)
  done

let test_random_trace_invalid () =
  let rng = Prng.Splitmix.of_int 1 in
  Alcotest.check_raises "n=0" (Invalid_argument "Trace.random_trace: n must be >= 1")
    (fun () -> ignore (Sim.Trace.random_trace rng ~n:0 ~steps:1))

let qcheck_replay_determinism =
  QCheck.Test.make ~name:"record+replay reproduces any run" ~count:30
    QCheck.(pair small_int (int_range 2 80))
    (fun (seed, n) ->
      let algo = rebatching_algo n in
      let recorder, extract = Sim.Trace.recorder Sim.Adversary.random in
      let original = Sim.Runner.run ~adversary:recorder ~seed ~n ~algo () in
      let replayed =
        Sim.Runner.run
          ~adversary:(Sim.Trace.replayer (extract ()))
          ~seed ~n ~algo ()
      in
      original.names = replayed.names && original.steps = replayed.steps)

(* ------------------------------------------------------------------ *)
(* Arrivals *)

let test_staggered_completes_unique () =
  let n = 64 in
  let algo = rebatching_algo n in
  let adversary = Sim.Arrivals.staggered ~interval:7 Sim.Adversary.random in
  let r = Sim.Runner.run ~adversary ~seed:4 ~n ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names r)

let test_bursts_completes_unique () =
  let n = 96 in
  let algo = rebatching_algo n in
  let adversary = Sim.Arrivals.bursts ~size:16 ~gap:64 Sim.Adversary.random in
  let r = Sim.Runner.run ~adversary ~seed:5 ~n ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names r)

let test_arrival_order_respected () =
  (* With one process arriving far in the future, everyone else must be
     already done by the time it probes: it wins its very first probe
     whenever the namespace has slack. *)
  let n = 8 in
  let instance = Renaming.Rebatching.make ~t0:3 ~n:64 () in
  let algo env = Renaming.Rebatching.get_name env instance in
  let times = Array.make n 0 in
  times.(0) <- 10_000;
  (* everyone else finishes within hundreds of steps *)
  let adversary = Sim.Arrivals.with_arrival_times ~times Sim.Adversary.random in
  let r = Sim.Runner.run ~adversary ~seed:6 ~n ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names r);
  checkb "late process finished" true (r.names.(0) <> None)

let test_arrivals_all_at_zero_is_neutral () =
  (* Arrival times of all-zero must behave exactly like the inner
     strategy. *)
  let n = 32 in
  let algo = rebatching_algo n in
  let plain = Sim.Runner.run ~seed:7 ~n ~algo () in
  let wrapped =
    Sim.Runner.run
      ~adversary:
        (Sim.Arrivals.with_arrival_times ~times:(Array.make n 0)
           Sim.Adversary.random)
      ~seed:7 ~n ~algo ()
  in
  Alcotest.(check (array (option int))) "same names" plain.names wrapped.names

let test_arrivals_invalid () =
  Alcotest.check_raises "negative time"
    (Invalid_argument "Arrivals.with_arrival_times: negative arrival time")
    (fun () ->
      ignore (Sim.Arrivals.with_arrival_times ~times:[| -1 |] Sim.Adversary.random));
  Alcotest.check_raises "negative interval"
    (Invalid_argument "Arrivals.staggered: negative interval") (fun () ->
      ignore (Sim.Arrivals.staggered ~interval:(-1) Sim.Adversary.random));
  Alcotest.check_raises "bad burst size"
    (Invalid_argument "Arrivals.bursts: size must be >= 1") (fun () ->
      ignore (Sim.Arrivals.bursts ~size:0 ~gap:1 Sim.Adversary.random))

let test_arrivals_with_adaptive_algorithms () =
  let n = 64 in
  List.iter
    (fun adversary ->
      let space = Renaming.Object_space.create ~t0:3 () in
      let algo env = Renaming.Adaptive_rebatching.get_name env space in
      let r = Sim.Runner.run ~adversary ~seed:8 ~n ~algo () in
      checkb "unique" true (Sim.Runner.check_unique_names r))
    [
      Sim.Arrivals.staggered ~interval:3 Sim.Adversary.random;
      Sim.Arrivals.bursts ~size:8 ~gap:100 Sim.Adversary.greedy_collision;
    ]

let qcheck_arrivals_safety =
  QCheck.Test.make ~name:"arrival patterns preserve uniqueness" ~count:25
    QCheck.(triple small_int (int_range 2 60) (int_range 0 50))
    (fun (seed, n, interval) ->
      let algo = rebatching_algo n in
      let adversary = Sim.Arrivals.staggered ~interval Sim.Adversary.random in
      let r = Sim.Runner.run ~adversary ~seed ~n ~algo () in
      Sim.Runner.check_unique_names r)

(* ------------------------------------------------------------------ *)
(* Bootstrap *)

let test_bootstrap_mean_brackets () =
  let rng = Prng.Splitmix.of_int 21 in
  let xs = Array.init 200 (fun i -> float_of_int (i mod 10)) in
  let iv = Stats.Bootstrap.mean_ci rng xs in
  checkb "point is the sample mean" true
    (Float.abs (iv.Stats.Bootstrap.point -. 4.5) < 1e-9);
  checkb "interval brackets point" true
    (iv.Stats.Bootstrap.low <= iv.point && iv.point <= iv.Stats.Bootstrap.high);
  checkb "interval is tight-ish" true (iv.high -. iv.low < 1.5)

let test_bootstrap_constant_sample () =
  let rng = Prng.Splitmix.of_int 22 in
  let iv = Stats.Bootstrap.mean_ci rng (Array.make 50 7.) in
  checkb "degenerate interval" true (iv.low = 7. && iv.high = 7. && iv.point = 7.)

let test_bootstrap_quantile () =
  let rng = Prng.Splitmix.of_int 23 in
  let xs = Array.init 500 (fun i -> float_of_int i) in
  let iv = Stats.Bootstrap.quantile_ci rng ~q:0.9 xs in
  checkb "point is ~ 449" true (Float.abs (iv.point -. 449.1) < 1.);
  checkb "interval around point" true (iv.low <= iv.point && iv.point <= iv.high)

let test_bootstrap_invalid () =
  let rng = Prng.Splitmix.of_int 24 in
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.ci: empty sample")
    (fun () -> ignore (Stats.Bootstrap.mean_ci rng [||]));
  Alcotest.check_raises "bad confidence"
    (Invalid_argument "Bootstrap.ci: confidence outside (0, 1)") (fun () ->
      ignore (Stats.Bootstrap.mean_ci rng ~confidence:1. [| 1. |]));
  Alcotest.check_raises "bad q"
    (Invalid_argument "Bootstrap.quantile_ci: q outside [0,1]") (fun () ->
      ignore (Stats.Bootstrap.quantile_ci rng ~q:2. [| 1. |]))

let test_bootstrap_deterministic () =
  let xs = Array.init 100 (fun i -> float_of_int (i * i mod 37)) in
  let iv1 = Stats.Bootstrap.mean_ci (Prng.Splitmix.of_int 9) xs in
  let iv2 = Stats.Bootstrap.mean_ci (Prng.Splitmix.of_int 9) xs in
  checkb "same rng, same interval" true (iv1 = iv2)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.trace",
      [
        tc "record/replay identical" `Quick test_record_replay_identical;
        tc "record/replay greedy" `Quick test_record_replay_greedy;
        tc "record crashes" `Quick test_record_crashes;
        tc "replay exhausted falls back" `Quick test_replay_exhausted_falls_back;
        tc "random trace fuzz" `Quick test_random_trace_as_fuzz;
        tc "random trace invalid" `Quick test_random_trace_invalid;
        QCheck_alcotest.to_alcotest qcheck_replay_determinism;
      ] );
    ( "sim.arrivals",
      [
        tc "staggered completes" `Quick test_staggered_completes_unique;
        tc "bursts complete" `Quick test_bursts_completes_unique;
        tc "arrival order respected" `Quick test_arrival_order_respected;
        tc "zero times neutral" `Quick test_arrivals_all_at_zero_is_neutral;
        tc "invalid args" `Quick test_arrivals_invalid;
        tc "adaptive algorithms" `Quick test_arrivals_with_adaptive_algorithms;
        QCheck_alcotest.to_alcotest qcheck_arrivals_safety;
      ] );
    ( "stats.bootstrap",
      [
        tc "mean brackets" `Quick test_bootstrap_mean_brackets;
        tc "constant sample" `Quick test_bootstrap_constant_sample;
        tc "quantile" `Quick test_bootstrap_quantile;
        tc "invalid" `Quick test_bootstrap_invalid;
        tc "deterministic" `Quick test_bootstrap_deterministic;
      ] );
  ]
