(* Tests for the adaptive algorithms (paper §5) and the object space. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Object space *)

let test_object_space_layout () =
  let sp = Renaming.Object_space.create () in
  (* eps = 1: m_i = 2^{i+1}; s_1 = 0, s_2 = 4, s_3 = 12, s_4 = 28 *)
  checki "s1" 0 (Renaming.Object_space.offset sp 1);
  checki "s2" 4 (Renaming.Object_space.offset sp 2);
  checki "s3" 12 (Renaming.Object_space.offset sp 3);
  checki "s4" 28 (Renaming.Object_space.offset sp 4);
  checki "total through 3" 28 (Renaming.Object_space.total_size sp 3)

let test_object_space_objects () =
  let sp = Renaming.Object_space.create () in
  let r3 = Renaming.Object_space.obj sp 3 in
  checki "n_3" 8 (Renaming.Rebatching.n r3);
  checki "m_3" 16 (Renaming.Rebatching.size r3);
  checki "base_3" 12 (Renaming.Rebatching.base r3);
  (* memoized: same physical object *)
  checkb "memoized" true (r3 == Renaming.Object_space.obj sp 3)

let test_object_space_order_independent () =
  (* Touching objects out of order must give the same layout. *)
  let a = Renaming.Object_space.create () in
  let b = Renaming.Object_space.create () in
  ignore (Renaming.Object_space.obj a 7);
  ignore (Renaming.Object_space.obj a 2);
  ignore (Renaming.Object_space.obj b 2);
  ignore (Renaming.Object_space.obj b 7);
  checki "same offset 7" (Renaming.Object_space.offset a 7)
    (Renaming.Object_space.offset b 7);
  checki "same offset 2" (Renaming.Object_space.offset a 2)
    (Renaming.Object_space.offset b 2)

let test_in_object_boundaries () =
  let sp = Renaming.Object_space.create () in
  (* R_2 occupies [4, 12) *)
  checkb "start" true (Renaming.Object_space.in_object sp 2 ~name:4);
  checkb "end" true (Renaming.Object_space.in_object sp 2 ~name:11);
  checkb "below" false (Renaming.Object_space.in_object sp 2 ~name:3);
  checkb "above" false (Renaming.Object_space.in_object sp 2 ~name:12)

let test_owner_of_name () =
  let sp = Renaming.Object_space.create () in
  checkb "0 in R1" true (Renaming.Object_space.owner_of_name sp 0 = Some 1);
  checkb "4 in R2" true (Renaming.Object_space.owner_of_name sp 4 = Some 2);
  checkb "12 in R3" true (Renaming.Object_space.owner_of_name sp 12 = Some 3);
  checkb "negative" true (Renaming.Object_space.owner_of_name sp (-1) = None)

let test_object_space_epsilon () =
  let sp = Renaming.Object_space.create ~epsilon:0.5 () in
  let r4 = Renaming.Object_space.obj sp 4 in
  (* m_4 = ceil (1.5 * 16) = 24 *)
  checki "m_4 with eps=.5" 24 (Renaming.Rebatching.size r4)

let test_object_space_invalid () =
  let sp = Renaming.Object_space.create () in
  Alcotest.check_raises "index 0"
    (Invalid_argument "Object_space: object index out of range") (fun () ->
      ignore (Renaming.Object_space.obj sp 0));
  Alcotest.check_raises "index too big"
    (Invalid_argument "Object_space: object index out of range") (fun () ->
      ignore (Renaming.Object_space.obj sp 61))

let qcheck_owner_roundtrip =
  QCheck.Test.make ~name:"owner_of_name finds the covering object" ~count:300
    QCheck.(int_range 0 10_000)
    (fun name ->
      let sp = Renaming.Object_space.create () in
      match Renaming.Object_space.owner_of_name sp name with
      | None -> false
      | Some i -> Renaming.Object_space.in_object sp i ~name)

(* ------------------------------------------------------------------ *)
(* AdaptiveReBatching (§5.1) *)

let adaptive_algo space env = Renaming.Adaptive_rebatching.get_name env space

let test_adaptive_unique () =
  let space = Renaming.Object_space.create () in
  let res = Sim.Runner.run ~seed:1 ~n:100 ~algo:(adaptive_algo space) () in
  checkb "unique" true (Sim.Runner.check_unique_names res)

let test_adaptive_single_process () =
  let space = Renaming.Object_space.create () in
  let res = Sim.Runner.run ~seed:2 ~n:1 ~algo:(adaptive_algo space) () in
  checkb "got a name" true (res.names.(0) <> None);
  (* Solo, k = 1: the name must come from a constant-size object. *)
  checkb "tiny name" true (Sim.Runner.max_name res < 32)

let test_adaptive_name_linear_in_k () =
  (* Theorem 5.1: largest name O(k) w.h.p.  The proof gives <= 4(1+eps)k =
     8k plus the small-object prefix; check a conservative 16k + 64. *)
  List.iter
    (fun k ->
      let space = Renaming.Object_space.create () in
      let res = Sim.Runner.run ~seed:(100 + k) ~n:k ~algo:(adaptive_algo space) () in
      checkb "unique" true (Sim.Runner.check_unique_names res);
      let bound = (16 * k) + 64 in
      checkb
        (Printf.sprintf "k=%d: max name %d <= %d" k (Sim.Runner.max_name res) bound)
        true
        (Sim.Runner.max_name res <= bound))
    [ 1; 2; 5; 10; 50; 200; 500 ]

let test_adaptive_under_adversaries () =
  List.iter
    (fun adv ->
      let space = Renaming.Object_space.create () in
      let res =
        Sim.Runner.run ~adversary:adv ~seed:3 ~n:80 ~algo:(adaptive_algo space) ()
      in
      checkb (Printf.sprintf "%s unique" adv.Sim.Adversary.name) true
        (Sim.Runner.check_unique_names res))
    Sim.Adversary.all_builtin

let test_adaptive_with_crashes () =
  let adversary = Sim.Adversary.with_crashes ~fraction:0.3 Sim.Adversary.random in
  let space = Renaming.Object_space.create () in
  let res = Sim.Runner.run ~adversary ~seed:4 ~n:120 ~algo:(adaptive_algo space) () in
  checkb "survivors unique" true (Sim.Runner.check_unique_names res)

let test_adaptive_two_waves_share_memory () =
  (* Two waves of processes arriving over the same shared memory (one
     location space) must still receive globally distinct names — names
     are never recycled. *)
  let space = Renaming.Object_space.create () in
  let locations = Sim.Location_space.create () in
  let root = Prng.Splitmix.of_int 55 in
  let names = ref [] in
  for pid = 0 to 59 do
    let rng = Prng.Splitmix.split_at root pid in
    let env =
      Renaming.Env.make ~pid
        ~tas:(Sim.Location_space.tas locations)
        ~random_int:(Prng.Splitmix.int rng) ()
    in
    match Renaming.Adaptive_rebatching.get_name env space with
    | Some u -> names := u :: !names
    | None -> Alcotest.fail "no name"
  done;
  let sorted = List.sort_uniq compare !names in
  checki "all 60 names distinct" 60 (List.length sorted)

(* ------------------------------------------------------------------ *)
(* FastAdaptiveReBatching (§5.2) *)

let fast_algo space env = Renaming.Fast_adaptive_rebatching.get_name env space

let test_fast_requires_epsilon_one () =
  let space = Renaming.Object_space.create ~epsilon:0.5 () in
  let env =
    Renaming.Env.make ~pid:0
      ~tas:(fun _ -> true)
      ~random_int:(fun b -> b / 2)
      ()
  in
  Alcotest.check_raises "eps != 1"
    (Invalid_argument "Fast_adaptive_rebatching: object space must use epsilon = 1")
    (fun () -> ignore (Renaming.Fast_adaptive_rebatching.get_name env space))

let test_fast_unique () =
  let space = Renaming.Object_space.create () in
  let res = Sim.Runner.run ~seed:6 ~n:100 ~algo:(fast_algo space) () in
  checkb "unique" true (Sim.Runner.check_unique_names res)

let test_fast_name_linear_in_k () =
  List.iter
    (fun k ->
      let space = Renaming.Object_space.create () in
      let res = Sim.Runner.run ~seed:(200 + k) ~n:k ~algo:(fast_algo space) () in
      checkb "unique" true (Sim.Runner.check_unique_names res);
      let bound = (16 * k) + 64 in
      checkb
        (Printf.sprintf "k=%d: max name %d <= %d" k (Sim.Runner.max_name res) bound)
        true
        (Sim.Runner.max_name res <= bound))
    [ 1; 2; 5; 10; 50; 200; 500 ]

let test_fast_under_adversaries () =
  List.iter
    (fun adv ->
      let space = Renaming.Object_space.create () in
      let res =
        Sim.Runner.run ~adversary:adv ~seed:7 ~n:80 ~algo:(fast_algo space) ()
      in
      checkb (Printf.sprintf "%s unique" adv.Sim.Adversary.name) true
        (Sim.Runner.check_unique_names res))
    Sim.Adversary.all_builtin

let test_fast_with_crashes () =
  let adversary = Sim.Adversary.with_crashes ~fraction:0.3 Sim.Adversary.layered in
  let space = Renaming.Object_space.create () in
  let res = Sim.Runner.run ~adversary ~seed:8 ~n:120 ~algo:(fast_algo space) () in
  checkb "survivors unique" true (Sim.Runner.check_unique_names res)

let test_fast_total_steps_beat_adaptive_at_scale () =
  (* Theorem 5.2 vs 5.1: FastAdaptive's total step complexity
     O(k log log k) should not exceed AdaptiveReBatching's
     Theta(k (log log k)^2) at moderate scale.  This is a statistical
     comparison over a few seeds; we assert the sane direction with slack. *)
  let total algo seed =
    let space = Renaming.Object_space.create () in
    (Sim.Runner.run ~seed ~n:400 ~algo:(algo space) ()).total_steps
  in
  let sum_fast = ref 0 and sum_adaptive = ref 0 in
  for seed = 1 to 5 do
    sum_fast := !sum_fast + total fast_algo seed;
    sum_adaptive := !sum_adaptive + total adaptive_algo seed
  done;
  checkb
    (Printf.sprintf "fast (%d) <= 1.5 * adaptive (%d)" !sum_fast !sum_adaptive)
    true
    (float_of_int !sum_fast <= 1.5 *. float_of_int !sum_adaptive)

let qcheck_adaptive_unique =
  QCheck.Test.make ~name:"adaptive names always unique" ~count:40
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, k) ->
      let space = Renaming.Object_space.create () in
      let res = Sim.Runner.run ~seed ~n:k ~algo:(adaptive_algo space) () in
      Sim.Runner.check_unique_names res)

let qcheck_fast_unique =
  QCheck.Test.make ~name:"fast adaptive names always unique" ~count:40
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, k) ->
      let space = Renaming.Object_space.create () in
      let res = Sim.Runner.run ~seed ~n:k ~algo:(fast_algo space) () in
      Sim.Runner.check_unique_names res)

let qcheck_fast_name_bound =
  QCheck.Test.make ~name:"fast adaptive name O(k)" ~count:30
    QCheck.(pair small_int (int_range 1 150))
    (fun (seed, k) ->
      let space = Renaming.Object_space.create () in
      let res = Sim.Runner.run ~seed ~n:k ~algo:(fast_algo space) () in
      Sim.Runner.max_name res <= (16 * k) + 64)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "adaptive.object_space",
      [
        tc "layout" `Quick test_object_space_layout;
        tc "objects" `Quick test_object_space_objects;
        tc "order independent" `Quick test_object_space_order_independent;
        tc "in_object boundaries" `Quick test_in_object_boundaries;
        tc "owner of name" `Quick test_owner_of_name;
        tc "epsilon" `Quick test_object_space_epsilon;
        tc "invalid" `Quick test_object_space_invalid;
        QCheck_alcotest.to_alcotest qcheck_owner_roundtrip;
      ] );
    ( "adaptive.rebatching",
      [
        tc "unique" `Quick test_adaptive_unique;
        tc "single process" `Quick test_adaptive_single_process;
        tc "name linear in k" `Quick test_adaptive_name_linear_in_k;
        tc "under adversaries" `Quick test_adaptive_under_adversaries;
        tc "with crashes" `Quick test_adaptive_with_crashes;
        tc "two waves share memory" `Quick test_adaptive_two_waves_share_memory;
        QCheck_alcotest.to_alcotest qcheck_adaptive_unique;
      ] );
    ( "adaptive.fast",
      [
        tc "requires epsilon=1" `Quick test_fast_requires_epsilon_one;
        tc "unique" `Quick test_fast_unique;
        tc "name linear in k" `Quick test_fast_name_linear_in_k;
        tc "under adversaries" `Quick test_fast_under_adversaries;
        tc "with crashes" `Quick test_fast_with_crashes;
        tc "total steps vs adaptive" `Quick test_fast_total_steps_beat_adaptive_at_scale;
        QCheck_alcotest.to_alcotest qcheck_fast_unique;
        QCheck_alcotest.to_alcotest qcheck_fast_name_bound;
      ] );
  ]
