(* Tests for the read/write sifter reproduction (paper refs [3, 22]) and
   the register extension of the simulator. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Register space *)

let test_registers_basic () =
  let r = Sim.Register_space.create () in
  checki "initial" 0 (Sim.Register_space.read r 5);
  Sim.Register_space.write r 5 42;
  checki "written" 42 (Sim.Register_space.read r 5);
  checki "peek" 42 (Sim.Register_space.peek r 5);
  checki "reads counted" 2 (Sim.Register_space.reads r);
  checki "writes counted" 1 (Sim.Register_space.writes r);
  Sim.Register_space.reset r;
  checki "reset value" 0 (Sim.Register_space.read r 5)

let test_registers_growth () =
  let r = Sim.Register_space.create () in
  Sim.Register_space.write r 10_000 7;
  checki "far register" 7 (Sim.Register_space.read r 10_000);
  Alcotest.check_raises "negative"
    (Invalid_argument "Register_space: negative register index") (fun () ->
      ignore (Sim.Register_space.read r (-1)))

let test_register_effects_through_scheduler () =
  (* Two processes communicate through a register under the scheduler:
     writer stores 7, reader spins until it sees it. *)
  let body pid () =
    if pid = 0 then begin
      Sim.Proc.write 0 7;
      Some 7
    end
    else begin
      let rec wait () =
        let v = Sim.Proc.read 0 in
        if v = 0 then wait () else Some v
      in
      wait ()
    end
  in
  let sched =
    Sim.Scheduler.create
      ~space:(Sim.Location_space.create ())
      ~adversary:Sim.Adversary.random
      ~rng:(Prng.Splitmix.of_int 1) ~n:2 ~body ()
  in
  Sim.Scheduler.run_to_completion sched;
  checkb "reader saw the write" true (Sim.Scheduler.name_of sched 1 = Some 7)

(* ------------------------------------------------------------------ *)
(* Sifter *)

let fake_registers () =
  let tbl = Hashtbl.create 8 in
  let read reg = Option.value ~default:0 (Hashtbl.find_opt tbl reg) in
  let write reg v = Hashtbl.replace tbl reg v in
  (read, write)

let test_sifter_writer_stays () =
  let read, write = fake_registers () in
  checkb "writer stays" true
    (Rwtas.Sifter.sift ~read ~write ~heads:true ~pid:3 ~reg:0 = Rwtas.Sifter.Stay);
  checki "id stored" 4 (read 0)

let test_sifter_early_reader_stays () =
  let read, write = fake_registers () in
  checkb "early reader stays" true
    (Rwtas.Sifter.sift ~read ~write ~heads:false ~pid:1 ~reg:0 = Rwtas.Sifter.Stay)

let test_sifter_late_reader_leaves () =
  let read, write = fake_registers () in
  ignore (Rwtas.Sifter.sift ~read ~write ~heads:true ~pid:0 ~reg:0);
  checkb "late reader leaves" true
    (Rwtas.Sifter.sift ~read ~write ~heads:false ~pid:1 ~reg:0 = Rwtas.Sifter.Leave)

let test_suggested_probability () =
  let p = Rwtas.Sifter.suggested_probability ~expected_contention:100. in
  checkb "1/sqrt k" true (Float.abs (p -. 0.1) < 1e-9);
  checkb "clamped at 1" true
    (Rwtas.Sifter.suggested_probability ~expected_contention:0.5 = 1.)

(* ------------------------------------------------------------------ *)
(* Cascade *)

let test_cascade_at_least_one_survivor () =
  (* Safety property P1, per level hence overall: under every adversary,
     at least one process survives the whole cascade. *)
  List.iter
    (fun adversary ->
      let r = Rwtas.Cascade.run ~adversary ~seed:2 ~n:64 () in
      checkb
        (Printf.sprintf "%s: >= 1 survivor" adversary.Sim.Adversary.name)
        true
        (Rwtas.Cascade.survivors r >= 1))
    (Sim.Adversary.all_builtin @ [ Rwtas.Anti_sifter.adversary ])

let test_cascade_solo_survives () =
  let r = Rwtas.Cascade.run ~seed:3 ~n:1 () in
  checki "solo survives" 1 (Rwtas.Cascade.survivors r)

let test_cascade_survivors_monotone () =
  let r = Rwtas.Cascade.run ~seed:4 ~n:1024 () in
  let prev = ref max_int in
  Array.iter
    (fun s ->
      checkb "non-increasing" true (s <= !prev);
      prev := s)
    r.survivors_per_level;
  checki "starts at n" 1024 r.survivors_per_level.(0)

let test_cascade_sifts_hard_under_oblivious () =
  (* One level should already crush n = 4096 to O(sqrt n)-ish. *)
  let r = Rwtas.Cascade.run ~seed:5 ~n:4096 () in
  checkb
    (Printf.sprintf "level-1 survivors %d < 8*sqrt n" r.survivors_per_level.(1))
    true
    (r.survivors_per_level.(1) < 8 * 64);
  checkb "final survivors tiny" true (Rwtas.Cascade.survivors r <= 16)

let test_cascade_anti_sifter_total_immunity () =
  let r =
    Rwtas.Cascade.run ~adversary:Rwtas.Anti_sifter.adversary ~seed:6 ~n:512 ()
  in
  checki "nobody sifted" 512 (Rwtas.Cascade.survivors r)

let test_cascade_steps_accounting () =
  (* Each process takes one step per level it enters, so total steps =
     sum over levels of that level's enterers. *)
  let r = Rwtas.Cascade.run ~seed:7 ~n:256 () in
  let levels = Array.length r.survivors_per_level - 1 in
  let steps_from_history = ref 0 in
  for l = 0 to levels - 1 do
    steps_from_history := !steps_from_history + r.survivors_per_level.(l)
  done;
  checki "steps = sum of enterers" !steps_from_history r.total_steps

let test_cascade_deterministic () =
  let a = Rwtas.Cascade.run ~seed:8 ~n:300 () in
  let b = Rwtas.Cascade.run ~seed:8 ~n:300 () in
  checkb "same exits" true (a.exit_level = b.exit_level)

let test_cascade_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Cascade.run: n must be >= 1")
    (fun () -> ignore (Rwtas.Cascade.run ~seed:1 ~n:0 ()));
  Alcotest.check_raises "levels=0" (Invalid_argument "Cascade.run: levels must be >= 1")
    (fun () -> ignore (Rwtas.Cascade.run ~levels:0 ~seed:1 ~n:4 ()))

let test_suggested_levels () =
  checkb "grows with n" true
    (Rwtas.Cascade.suggested_levels ~n:1_000_000
    >= Rwtas.Cascade.suggested_levels ~n:16);
  checkb "small" true (Rwtas.Cascade.suggested_levels ~n:1_000_000 <= 10)

let qcheck_cascade_safety =
  QCheck.Test.make ~name:"cascade always keeps a survivor" ~count:40
    QCheck.(pair small_int (int_range 1 300))
    (fun (seed, n) ->
      let r = Rwtas.Cascade.run ~seed ~n () in
      Rwtas.Cascade.survivors r >= 1
      && r.survivors_per_level.(0) = n)

let qcheck_cascade_validated_adversaries =
  QCheck.Test.make ~name:"cascade passes the adversary contract" ~count:20
    QCheck.(pair small_int (int_range 1 100))
    (fun (seed, n) ->
      let adversary = Sim.Validator.validated Rwtas.Anti_sifter.adversary in
      let r = Rwtas.Cascade.run ~adversary ~seed ~n () in
      Rwtas.Cascade.survivors r = n)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.register_space",
      [
        tc "basic" `Quick test_registers_basic;
        tc "growth" `Quick test_registers_growth;
        tc "effects through scheduler" `Quick test_register_effects_through_scheduler;
      ] );
    ( "rwtas.sifter",
      [
        tc "writer stays" `Quick test_sifter_writer_stays;
        tc "early reader stays" `Quick test_sifter_early_reader_stays;
        tc "late reader leaves" `Quick test_sifter_late_reader_leaves;
        tc "suggested probability" `Quick test_suggested_probability;
      ] );
    ( "rwtas.cascade",
      [
        tc "at least one survivor" `Quick test_cascade_at_least_one_survivor;
        tc "solo survives" `Quick test_cascade_solo_survives;
        tc "survivors monotone" `Quick test_cascade_survivors_monotone;
        tc "sifts hard (oblivious)" `Quick test_cascade_sifts_hard_under_oblivious;
        tc "anti-sifter immunity" `Quick test_cascade_anti_sifter_total_immunity;
        tc "steps accounting" `Quick test_cascade_steps_accounting;
        tc "deterministic" `Quick test_cascade_deterministic;
        tc "invalid" `Quick test_cascade_invalid;
        tc "suggested levels" `Quick test_suggested_levels;
        QCheck_alcotest.to_alcotest qcheck_cascade_safety;
        QCheck_alcotest.to_alcotest qcheck_cascade_validated_adversaries;
      ] );
  ]
