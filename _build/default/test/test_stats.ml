(* Tests for lib/stats: summaries, histograms, regression. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let float_close ?(eps = 1e-9) msg a b =
  if Float.abs (a -. b) > eps then
    Alcotest.failf "%s: %.12g <> %.12g (eps %.1g)" msg a b eps

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_acc_known_values () =
  let acc = Stats.Summary.acc_create () in
  List.iter (fun x -> Stats.Summary.acc_add acc x) [ 1.; 2.; 3.; 4.; 5. ];
  checki "count" 5 (Stats.Summary.acc_count acc);
  float_close "mean" 3. (Stats.Summary.acc_mean acc);
  float_close "variance" 2.5 (Stats.Summary.acc_variance acc);
  float_close "stddev" (sqrt 2.5) (Stats.Summary.acc_stddev acc);
  float_close "min" 1. (Stats.Summary.acc_min acc);
  float_close "max" 5. (Stats.Summary.acc_max acc)

let test_acc_single () =
  let acc = Stats.Summary.acc_create () in
  Stats.Summary.acc_add acc 7.;
  float_close "mean" 7. (Stats.Summary.acc_mean acc);
  float_close "variance" 0. (Stats.Summary.acc_variance acc)

let test_acc_empty () =
  let acc = Stats.Summary.acc_create () in
  checki "count" 0 (Stats.Summary.acc_count acc);
  float_close "variance" 0. (Stats.Summary.acc_variance acc)

let test_of_array_known () =
  let s = Stats.Summary.of_array [| 1.; 2.; 3.; 4.; 5. |] in
  checki "count" 5 s.count;
  float_close "mean" 3. s.mean;
  float_close "median" 3. s.median;
  float_close "min" 1. s.min;
  float_close "max" 5. s.max;
  checkb "ci brackets mean" true (s.ci95_low <= s.mean && s.mean <= s.ci95_high)

let test_of_array_single () =
  let s = Stats.Summary.of_array [| 42. |] in
  float_close "mean" 42. s.mean;
  float_close "median" 42. s.median;
  float_close "p05" 42. s.p05;
  float_close "p95" 42. s.p95;
  float_close "stddev" 0. s.stddev

let test_of_array_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty sample")
    (fun () -> ignore (Stats.Summary.of_array [||]))

let test_of_int_array () =
  let s = Stats.Summary.of_int_array [| 2; 4; 6 |] in
  float_close "mean" 4. s.mean

let test_percentile_interpolation () =
  float_close "median of pair" 5. (Stats.Summary.percentile [| 0.; 10. |] 0.5);
  float_close "q=0" 0. (Stats.Summary.percentile [| 0.; 10. |] 0.);
  float_close "q=1" 10. (Stats.Summary.percentile [| 0.; 10. |] 1.);
  float_close "quarter" 2.5 (Stats.Summary.percentile [| 0.; 10. |] 0.25);
  (* order must not matter *)
  float_close "unsorted input" 5. (Stats.Summary.percentile [| 10.; 0. |] 0.5)

let test_percentile_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.percentile: empty sample")
    (fun () -> ignore (Stats.Summary.percentile [||] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Summary.percentile: q outside [0,1]") (fun () ->
      ignore (Stats.Summary.percentile [| 1. |] 1.5))

let test_mean () =
  float_close "mean" 2. (Stats.Summary.mean [| 1.; 2.; 3. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Summary.mean: empty sample")
    (fun () -> ignore (Stats.Summary.mean [||]))

let test_summary_matches_acc () =
  (* of_array and the online accumulator must agree. *)
  let rng = Prng.Splitmix.of_int 99 in
  let xs = Array.init 500 (fun _ -> Prng.Splitmix.float rng *. 100.) in
  let acc = Stats.Summary.acc_create () in
  Array.iter (fun x -> Stats.Summary.acc_add acc x) xs;
  let s = Stats.Summary.of_array xs in
  float_close ~eps:1e-6 "mean agreement" (Stats.Summary.acc_mean acc) s.mean;
  float_close ~eps:1e-6 "stddev agreement" (Stats.Summary.acc_stddev acc) s.stddev

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_basic () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 3;
  Stats.Histogram.add h 3;
  Stats.Histogram.add h 7;
  checki "count 3" 2 (Stats.Histogram.count h 3);
  checki "count 7" 1 (Stats.Histogram.count h 7);
  checki "count absent" 0 (Stats.Histogram.count h 5);
  checki "total" 3 (Stats.Histogram.total h);
  checki "max value" 7 (Stats.Histogram.max_value h);
  float_close ~eps:1e-9 "mean" (13. /. 3.) (Stats.Histogram.mean h)

let test_histogram_add_many () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add_many h 2 10;
  Stats.Histogram.add_many h 100 5;
  checki "count 2" 10 (Stats.Histogram.count h 2);
  checki "count 100" 5 (Stats.Histogram.count h 100);
  checki "total" 15 (Stats.Histogram.total h);
  Alcotest.(check (list (pair int int)))
    "to_alist"
    [ (2, 10); (100, 5) ]
    (Stats.Histogram.to_alist h)

let test_histogram_empty () =
  let h = Stats.Histogram.create () in
  checki "total" 0 (Stats.Histogram.total h);
  checki "max value" (-1) (Stats.Histogram.max_value h);
  checkb "mean is nan" true (Float.is_nan (Stats.Histogram.mean h))

let test_histogram_negative () =
  let h = Stats.Histogram.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.add: negative value")
    (fun () -> Stats.Histogram.add h (-1))

let test_histogram_render () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add_many h 1 10;
  Stats.Histogram.add_many h 2 5;
  let s = Stats.Histogram.render ~width:20 h in
  checkb "mentions 1" true
    (String.length s > 0 && String.contains s '#' && String.contains s '1')

(* ------------------------------------------------------------------ *)
(* Regression *)

let test_linear_fit_exact () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  let f = Stats.Regression.linear_fit xs ys in
  float_close "slope" 2. f.slope;
  float_close "intercept" 1. f.intercept;
  float_close "r2" 1. f.r2

let test_linear_fit_constant_x () =
  let f = Stats.Regression.linear_fit [| 3.; 3.; 3. |] [| 1.; 2.; 3. |] in
  float_close "slope" 0. f.slope;
  float_close "r2" 0. f.r2

let test_linear_fit_constant_y () =
  let f = Stats.Regression.linear_fit [| 1.; 2.; 3. |] [| 5.; 5.; 5. |] in
  float_close "slope" 0. f.slope;
  float_close "intercept" 5. f.intercept;
  float_close "r2" 1. f.r2

let test_linear_fit_invalid () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Regression.linear_fit: length mismatch") (fun () ->
      ignore (Stats.Regression.linear_fit [| 1. |] [| 1.; 2. |]));
  Alcotest.check_raises "too few"
    (Invalid_argument "Regression.linear_fit: need at least two points")
    (fun () -> ignore (Stats.Regression.linear_fit [| 1. |] [| 1. |]))

let test_fit_log_model () =
  let sizes = Array.init 10 (fun i -> float_of_int (1 lsl (i + 4))) in
  let values = Array.map (fun n -> 3. +. (2. *. log n)) sizes in
  let f = Stats.Regression.fit_model Stats.Regression.Log ~sizes ~values in
  float_close ~eps:1e-6 "slope" 2. f.slope;
  float_close ~eps:1e-6 "r2" 1. f.r2

let test_fit_loglog_model () =
  let sizes = Array.init 12 (fun i -> float_of_int (1 lsl (i + 4))) in
  let values = Array.map (fun n -> 1. +. log (log n)) sizes in
  let f = Stats.Regression.fit_model Stats.Regression.Log_log ~sizes ~values in
  float_close ~eps:1e-6 "slope" 1. f.slope;
  float_close ~eps:1e-6 "r2" 1. f.r2

let test_best_model_discriminates () =
  (* loglog data should prefer Log_log over Log and Linear. *)
  let sizes = Array.init 14 (fun i -> float_of_int (1 lsl (i + 4))) in
  let values = Array.map (fun n -> 2. +. (3. *. log (log n))) sizes in
  let best, fit =
    Stats.Regression.best_model
      [ Stats.Regression.Log; Stats.Regression.Log_log; Stats.Regression.Linear ]
      ~sizes ~values
  in
  checkb "picks loglog" true (best = Stats.Regression.Log_log);
  checkb "good fit" true (fit.r2 > 0.999)

let test_best_model_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Regression.best_model: empty model list") (fun () ->
      ignore (Stats.Regression.best_model [] ~sizes:[| 1.; 2. |] ~values:[| 1.; 2. |]))

let test_model_names () =
  let open Stats.Regression in
  List.iter
    (fun m -> checkb "nonempty name" true (String.length (model_name m) > 0))
    [ Const; Log_log; Log_log_sq; Log; Sqrt; Linear; N_log_log ]

let test_apply_model_clamps () =
  let open Stats.Regression in
  (* tiny sizes must not produce NaNs *)
  List.iter
    (fun m ->
      let v = apply_model m 1. in
      Alcotest.check Alcotest.bool "finite" true (Float.is_finite v))
    [ Const; Log_log; Log_log_sq; Log; Sqrt; Linear; N_log_log ]

(* ------------------------------------------------------------------ *)
(* Ascii plot *)

let test_plot_basic () =
  let s =
    Stats.Ascii_plot.render
      [
        {
          Stats.Ascii_plot.label = "line";
          marker = '*';
          points = [| (1., 1.); (2., 2.); (3., 3.) |];
        };
      ]
  in
  checkb "contains marker" true (String.contains s '*');
  checkb "contains legend" true (String.contains s 'l');
  checkb "contains axis" true (String.contains s '+')

let test_plot_log_x () =
  let s =
    Stats.Ascii_plot.render ~log_x:true
      [
        {
          Stats.Ascii_plot.label = "p";
          marker = 'o';
          points = [| (64., 1.); (4096., 2.) |];
        };
      ]
  in
  checkb "log axis label" true
    (let rec find i =
       i + 2 <= String.length s && (String.sub s i 2 = "2^" || find (i + 1))
     in
     find 0)

let test_plot_single_point () =
  let s =
    Stats.Ascii_plot.render
      [ { Stats.Ascii_plot.label = "pt"; marker = 'x'; points = [| (5., 5.) |] } ]
  in
  checkb "renders" true (String.contains s 'x')

let test_plot_invalid () =
  Alcotest.check_raises "no data" (Invalid_argument "Ascii_plot.render: no data")
    (fun () ->
      ignore
        (Stats.Ascii_plot.render
           [ { Stats.Ascii_plot.label = "e"; marker = 'x'; points = [||] } ]));
  Alcotest.check_raises "log of nonpositive"
    (Invalid_argument "Ascii_plot.render: log_x requires positive x") (fun () ->
      ignore
        (Stats.Ascii_plot.render ~log_x:true
           [ { Stats.Ascii_plot.label = "e"; marker = 'x'; points = [| (0., 1.) |] } ]));
  Alcotest.check_raises "tiny grid"
    (Invalid_argument "Ascii_plot.render: dimensions must be >= 2") (fun () ->
      ignore
        (Stats.Ascii_plot.render ~width:1
           [ { Stats.Ascii_plot.label = "e"; marker = 'x'; points = [| (1., 1.) |] } ]))

let qcheck_plot_never_crashes =
  QCheck.Test.make ~name:"plot renders any finite data" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40)
              (pair (float_range (-1000.) 1000.) (float_range (-1000.) 1000.)))
    (fun points ->
      let s =
        Stats.Ascii_plot.render
          [
            {
              Stats.Ascii_plot.label = "q";
              marker = '*';
              points = Array.of_list points;
            };
          ]
      in
      String.length s > 0)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile between min and max" ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.))
              (float_range 0. 1.))
    (fun (l, q) ->
      let xs = Array.of_list l in
      let p = Stats.Summary.percentile xs q in
      let mn = Array.fold_left Float.min infinity xs in
      let mx = Array.fold_left Float.max neg_infinity xs in
      p >= mn -. 1e-9 && p <= mx +. 1e-9)

let qcheck_r2_range =
  QCheck.Test.make ~name:"r2 is in [0,1]" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 2 30) (float_bound_exclusive 100.))
        (list_of_size (Gen.int_range 2 30) (float_bound_exclusive 100.)))
    (fun (lx, ly) ->
      let n = min (List.length lx) (List.length ly) in
      QCheck.assume (n >= 2);
      let xs = Array.of_list (List.filteri (fun i _ -> i < n) lx) in
      let ys = Array.of_list (List.filteri (fun i _ -> i < n) ly) in
      let f = Stats.Regression.linear_fit xs ys in
      f.r2 >= -1e-9 && f.r2 <= 1. +. 1e-9)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "stats.summary",
      [
        tc "acc known values" `Quick test_acc_known_values;
        tc "acc single" `Quick test_acc_single;
        tc "acc empty" `Quick test_acc_empty;
        tc "of_array known" `Quick test_of_array_known;
        tc "of_array single" `Quick test_of_array_single;
        tc "of_array empty" `Quick test_of_array_empty;
        tc "of_int_array" `Quick test_of_int_array;
        tc "percentile interpolation" `Quick test_percentile_interpolation;
        tc "percentile invalid" `Quick test_percentile_invalid;
        tc "mean" `Quick test_mean;
        tc "summary matches acc" `Quick test_summary_matches_acc;
        QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
      ] );
    ( "stats.histogram",
      [
        tc "basic" `Quick test_histogram_basic;
        tc "add_many" `Quick test_histogram_add_many;
        tc "empty" `Quick test_histogram_empty;
        tc "negative" `Quick test_histogram_negative;
        tc "render" `Quick test_histogram_render;
      ] );
    ( "stats.ascii_plot",
      [
        tc "basic" `Quick test_plot_basic;
        tc "log x" `Quick test_plot_log_x;
        tc "single point" `Quick test_plot_single_point;
        tc "invalid" `Quick test_plot_invalid;
        QCheck_alcotest.to_alcotest qcheck_plot_never_crashes;
      ] );
    ( "stats.regression",
      [
        tc "linear fit exact" `Quick test_linear_fit_exact;
        tc "constant x" `Quick test_linear_fit_constant_x;
        tc "constant y" `Quick test_linear_fit_constant_y;
        tc "invalid" `Quick test_linear_fit_invalid;
        tc "log model" `Quick test_fit_log_model;
        tc "loglog model" `Quick test_fit_loglog_model;
        tc "best model discriminates" `Quick test_best_model_discriminates;
        tc "best model empty" `Quick test_best_model_empty;
        tc "model names" `Quick test_model_names;
        tc "apply model clamps" `Quick test_apply_model_clamps;
        QCheck_alcotest.to_alcotest qcheck_r2_range;
      ] );
  ]
