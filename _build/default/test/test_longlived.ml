(* Tests for long-lived renaming (acquire/release) and the reset
   plumbing through both substrates. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let test_release_then_reacquire_sequential () =
  (* One process cycling forever in an otherwise empty system must keep
     getting names, and the space never accumulates taken cells. *)
  let object_ = Renaming.Long_lived.make ~n:4 () in
  let space = Sim.Location_space.create () in
  let rng = Prng.Splitmix.of_int 1 in
  let env =
    Renaming.Env.make ~pid:0
      ~tas:(Sim.Location_space.tas space)
      ~reset:(Sim.Location_space.release space)
      ~random_int:(Prng.Splitmix.int rng) ()
  in
  for _ = 1 to 100 do
    match Renaming.Long_lived.acquire env object_ with
    | None -> Alcotest.fail "acquire failed in empty system"
    | Some u -> Renaming.Long_lived.release env object_ u
  done;
  checki "space empty at the end" 0 (Sim.Location_space.win_count space)

let test_release_validates_namespace () =
  let object_ = Renaming.Long_lived.make ~n:4 () in
  let env =
    Renaming.Env.make ~pid:0
      ~tas:(fun _ -> true)
      ~reset:(fun _ -> ())
      ~random_int:(fun _ -> 0)
      ()
  in
  Alcotest.check_raises "name out of namespace"
    (Invalid_argument "Long_lived.release: name outside this object's namespace")
    (fun () -> Renaming.Long_lived.release env object_ 10_000)

let test_env_without_reset_raises () =
  let object_ = Renaming.Long_lived.make ~n:4 () in
  let env =
    Renaming.Env.make ~pid:0 ~tas:(fun _ -> true) ~random_int:(fun _ -> 0) ()
  in
  Alcotest.check_raises "no reset capability"
    (Invalid_argument "Env.reset: this environment does not support release")
    (fun () -> Renaming.Long_lived.release env object_ 0)

let churn_algo object_ rounds (env : Renaming.Env.t) =
  let rec cycle r =
    match Renaming.Long_lived.acquire env object_ with
    | None -> None
    | Some u ->
      if r = 1 then Some u
      else begin
        Renaming.Long_lived.release env object_ u;
        cycle (r - 1)
      end
  in
  cycle rounds

let run_churn ?adversary ~seed ~n ~rounds () =
  let object_ = Renaming.Long_lived.make ~t0:3 ~n () in
  let held = Hashtbl.create 64 in
  let violations = ref 0 in
  let acquisitions = ref 0 in
  let on_event ~pid:_ = function
    | Renaming.Events.Name_acquired { name; _ } ->
      incr acquisitions;
      if Hashtbl.mem held name then incr violations else Hashtbl.replace held name ()
    | Renaming.Events.Name_released { name; _ } -> Hashtbl.remove held name
    | _ -> ()
  in
  let r =
    Sim.Runner.run ?adversary ~on_event ~seed ~n
      ~algo:(churn_algo object_ rounds) ()
  in
  (r, object_, !violations, !acquisitions)

let test_churn_no_double_hold () =
  let r, object_, violations, acquisitions =
    run_churn ~seed:3 ~n:32 ~rounds:20 ()
  in
  checki "no double holds" 0 violations;
  checki "acquisition count" (32 * 20) acquisitions;
  checkb "final holders unique" true (Sim.Runner.check_unique_names r);
  checkb "names inside namespace" true
    (Sim.Runner.max_name r
    < Renaming.Rebatching.size (Renaming.Long_lived.instance object_))

let test_churn_under_all_adversaries () =
  List.iter
    (fun adv ->
      let _, _, violations, _ =
        run_churn ~adversary:adv ~seed:4 ~n:24 ~rounds:8 ()
      in
      checki (Printf.sprintf "%s: no double holds" adv.Sim.Adversary.name) 0
        violations)
    Sim.Adversary.all_builtin

let test_churn_namespace_reuse () =
  (* Total acquisitions far exceed the namespace, proving reuse. *)
  let _, object_, _, acquisitions = run_churn ~seed:5 ~n:16 ~rounds:50 () in
  let m = Renaming.Rebatching.size (Renaming.Long_lived.instance object_) in
  checkb
    (Printf.sprintf "acquisitions %d >> namespace %d" acquisitions m)
    true
    (acquisitions > 10 * m)

let test_reset_counts_as_step () =
  (* In the effect scheduler, a release consumes exactly one step. *)
  let object_ = Renaming.Long_lived.make ~n:2 () in
  let algo (env : Renaming.Env.t) =
    match Renaming.Long_lived.acquire env object_ with
    | None -> None
    | Some u ->
      Renaming.Long_lived.release env object_ u;
      Some u
  in
  let r = Sim.Runner.run ~seed:6 ~n:1 ~algo () in
  (* solo process: acquire = 1 winning probe, release = 1 reset *)
  checki "steps = probe + reset" 2 r.steps.(0)

let test_shm_churn () =
  (* Real atomics: after everyone releases, the space must be empty, and
     every acquisition must have been a genuine TAS win. *)
  let object_ = Renaming.Long_lived.make ~t0:3 ~n:16 () in
  let capacity = Renaming.Rebatching.size (Renaming.Long_lived.instance object_) in
  let algo (env : Renaming.Env.t) =
    let rec cycle r =
      if r = 0 then Some 0
      else
        match Renaming.Long_lived.acquire env object_ with
        | None -> None
        | Some u ->
          Renaming.Long_lived.release env object_ u;
          cycle (r - 1)
    in
    cycle 25
  in
  let r = Shm.Domain_runner.run ~domains:4 ~seed:7 ~procs:16 ~capacity ~algo () in
  checkb "all cycles completed" true (Array.for_all (fun v -> v <> None) r.names)

let adaptive_churn_algo ?(fast = false) space rounds (env : Renaming.Env.t) =
  let acquire =
    if fast then Renaming.Long_lived.Adaptive.acquire_fast
    else Renaming.Long_lived.Adaptive.acquire
  in
  let rec cycle r =
    match acquire env space with
    | None -> None
    | Some u ->
      if r = 1 then Some u
      else begin
        Renaming.Long_lived.Adaptive.release env space u;
        cycle (r - 1)
      end
  in
  cycle rounds

let test_adaptive_churn_no_leak () =
  (* With get_name_releasing, superseded names are returned, so the
     number of cells still taken at quiescence equals the number of final
     holders — the namespace does not leak across epochs. *)
  let space = Renaming.Object_space.create ~t0:3 () in
  let locations = Sim.Location_space.create () in
  let root = Prng.Splitmix.of_int 77 in
  let holders = ref 0 in
  for pid = 0 to 15 do
    let rng = Prng.Splitmix.split_at root pid in
    let env =
      Renaming.Env.make ~pid
        ~tas:(Sim.Location_space.tas locations)
        ~reset:(Sim.Location_space.release locations)
        ~random_int:(Prng.Splitmix.int rng) ()
    in
    for _ = 1 to 5 do
      match Renaming.Long_lived.Adaptive.acquire env space with
      | None -> Alcotest.fail "acquire failed"
      | Some u -> Renaming.Long_lived.Adaptive.release env space u
    done;
    (* final acquisition kept *)
    match Renaming.Long_lived.Adaptive.acquire env space with
    | None -> Alcotest.fail "acquire failed"
    | Some _ -> incr holders
  done;
  checki "taken cells = final holders" !holders
    (Sim.Location_space.win_count locations)

let test_adaptive_churn_concurrent () =
  let space = Renaming.Object_space.create ~t0:3 () in
  let spec = Renaming.Spec.create () in
  Renaming.Spec.with_object_space spec space;
  let r =
    Sim.Runner.run
      ~on_event:(Renaming.Spec.observe spec)
      ~seed:9 ~n:48
      ~algo:(adaptive_churn_algo space 8)
      ()
  in
  checkb "unique final holders" true (Sim.Runner.check_unique_names r);
  Alcotest.(check (list string)) "spec clean" [] (Renaming.Spec.violations spec)

let test_fast_adaptive_churn_concurrent () =
  let space = Renaming.Object_space.create () in
  let spec = Renaming.Spec.create () in
  Renaming.Spec.with_object_space spec space;
  let r =
    Sim.Runner.run
      ~on_event:(Renaming.Spec.observe spec)
      ~seed:10 ~n:48
      ~algo:(adaptive_churn_algo ~fast:true space 8)
      ()
  in
  checkb "unique final holders" true (Sim.Runner.check_unique_names r);
  Alcotest.(check (list string)) "spec clean" [] (Renaming.Spec.violations spec)

let test_adaptive_release_validates () =
  let space = Renaming.Object_space.create () in
  let env =
    Renaming.Env.make ~pid:0
      ~tas:(fun _ -> true)
      ~reset:(fun _ -> ())
      ~random_int:(fun _ -> 0)
      ()
  in
  Alcotest.check_raises "unowned name"
    (Invalid_argument "Long_lived.Adaptive.release: name outside every object")
    (fun () -> Renaming.Long_lived.Adaptive.release env space (-3))

let qcheck_churn_safety =
  QCheck.Test.make ~name:"churn never double-holds a name" ~count:25
    QCheck.(triple small_int (int_range 1 40) (int_range 1 15))
    (fun (seed, n, rounds) ->
      let _, _, violations, acquisitions = run_churn ~seed ~n ~rounds () in
      violations = 0 && acquisitions = n * rounds)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "long_lived",
      [
        tc "release then reacquire" `Quick test_release_then_reacquire_sequential;
        tc "release validates namespace" `Quick test_release_validates_namespace;
        tc "env without reset raises" `Quick test_env_without_reset_raises;
        tc "churn no double hold" `Quick test_churn_no_double_hold;
        tc "churn under all adversaries" `Quick test_churn_under_all_adversaries;
        tc "namespace reuse" `Quick test_churn_namespace_reuse;
        tc "reset counts as step" `Quick test_reset_counts_as_step;
        tc "multicore churn" `Quick test_shm_churn;
        tc "adaptive churn no leak" `Quick test_adaptive_churn_no_leak;
        tc "adaptive churn concurrent" `Quick test_adaptive_churn_concurrent;
        tc "fast adaptive churn concurrent" `Quick test_fast_adaptive_churn_concurrent;
        tc "adaptive release validates" `Quick test_adaptive_release_validates;
        QCheck_alcotest.to_alcotest qcheck_churn_safety;
      ] );
  ]
