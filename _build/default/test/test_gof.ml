(* Tests for the goodness-of-fit module, plus distributional tests of the
   PRNG layer that use it. *)

let checkb = Alcotest.check Alcotest.bool

let float_close ?(eps = 1e-9) msg a b =
  if Float.abs (a -. b) > eps then
    Alcotest.failf "%s: %.12g <> %.12g (eps %.1g)" msg a b eps

(* ------------------------------------------------------------------ *)
(* Special functions *)

let test_log_gamma_known () =
  (* Gamma(1) = Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt pi *)
  float_close ~eps:1e-10 "ln Gamma(1)" 0. (Stats.Gof.log_gamma 1.);
  float_close ~eps:1e-10 "ln Gamma(2)" 0. (Stats.Gof.log_gamma 2.);
  float_close ~eps:1e-9 "ln Gamma(5)" (log 24.) (Stats.Gof.log_gamma 5.);
  float_close ~eps:1e-9 "ln Gamma(0.5)" (0.5 *. log Float.pi)
    (Stats.Gof.log_gamma 0.5)

let test_log_gamma_recurrence () =
  (* Gamma(x+1) = x Gamma(x) *)
  List.iter
    (fun x ->
      float_close ~eps:1e-8
        (Printf.sprintf "recurrence at %f" x)
        (Stats.Gof.log_gamma (x +. 1.))
        (log x +. Stats.Gof.log_gamma x))
    [ 0.3; 1.7; 4.2; 10.0; 55.5 ]

let test_log_gamma_vs_factorial () =
  (* agrees with Dist.log_factorial on integers *)
  for n = 1 to 50 do
    float_close ~eps:1e-7
      (Printf.sprintf "n=%d" n)
      (Prng.Dist.log_factorial (n - 1))
      (Stats.Gof.log_gamma (float_of_int n))
  done

let test_regularized_gamma_edges () =
  float_close "P(a,0)=0" 0. (Stats.Gof.regularized_gamma_p ~a:2.5 ~x:0.);
  (* P(1,x) = 1 - e^-x *)
  List.iter
    (fun x ->
      float_close ~eps:1e-10
        (Printf.sprintf "P(1,%f)" x)
        (1. -. exp (-.x))
        (Stats.Gof.regularized_gamma_p ~a:1. ~x))
    [ 0.1; 1.0; 3.0; 10.0 ];
  (* monotone in x, limits to 1 *)
  checkb "P(3,50) ~ 1" true (Stats.Gof.regularized_gamma_p ~a:3. ~x:50. > 0.999999)

let test_regularized_gamma_poisson_duality () =
  (* Poisson CDF identity: P[X <= n] = Q(n+1, lambda) = 1 - P(n+1, lambda) *)
  List.iter
    (fun (lambda, n) ->
      float_close ~eps:1e-9
        (Printf.sprintf "lambda=%f n=%d" lambda n)
        (Prng.Dist.poisson_cdf ~lambda n)
        (1. -. Stats.Gof.regularized_gamma_p ~a:(float_of_int (n + 1)) ~x:lambda))
    [ (0.5, 0); (1.0, 2); (4.0, 4); (10.0, 15); (25.0, 20) ]

let test_chi_square_cdf_known () =
  (* chi^2(2) is Exp(1/2): CDF(x) = 1 - e^{-x/2} *)
  List.iter
    (fun x ->
      float_close ~eps:1e-10
        (Printf.sprintf "df=2, x=%f" x)
        (1. -. exp (-.x /. 2.))
        (Stats.Gof.chi_square_cdf ~df:2 x))
    [ 0.0; 0.5; 2.0; 5.0 ];
  (* median of chi^2(1) is ~0.455 *)
  let median = Stats.Gof.chi_square_cdf ~df:1 0.4549 in
  checkb "df=1 median" true (Float.abs (median -. 0.5) < 1e-3)

(* ------------------------------------------------------------------ *)
(* Chi-square test behaviour *)

let test_chi_square_accepts_exact () =
  let r = Stats.Gof.chi_square_test ~observed:[| 10; 10; 10 |] ~expected:[| 10.; 10.; 10. |] in
  float_close "statistic 0" 0. r.statistic;
  float_close "p-value 1" 1. r.p_value

let test_chi_square_rejects_biased () =
  let r = Stats.Gof.chi_square_uniform_test ~observed:[| 1000; 10; 10; 10 |] in
  checkb "tiny p-value" true (r.p_value < 1e-10)

let test_chi_square_invalid () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Gof.chi_square_test: length mismatch")
    (fun () ->
      ignore (Stats.Gof.chi_square_test ~observed:[| 1 |] ~expected:[| 1.; 2. |]));
  Alcotest.check_raises "empty" (Invalid_argument "Gof.chi_square_test: empty arrays")
    (fun () -> ignore (Stats.Gof.chi_square_test ~observed:[||] ~expected:[||]))

let test_splitmix_uniformity_chi_square () =
  (* 64 cells, 64k draws: the PRNG must pass at the 0.001 level. *)
  let rng = Prng.Splitmix.of_int 12345 in
  let cells = Array.make 64 0 in
  for _ = 1 to 65536 do
    let v = Prng.Splitmix.int rng 64 in
    cells.(v) <- cells.(v) + 1
  done;
  let r = Stats.Gof.chi_square_uniform_test ~observed:cells in
  checkb
    (Printf.sprintf "uniformity p=%.4f stat=%.1f" r.p_value r.statistic)
    true (r.p_value > 0.001)

let test_poisson_sampler_chi_square () =
  (* Bin Poisson(4) samples at 0..12 plus a tail bin and test against the
     exact pmf. *)
  let lambda = 4.0 in
  let rng = Prng.Splitmix.of_int 999 in
  let n = 40_000 in
  let k_max = 12 in
  let observed = Array.make (k_max + 2) 0 in
  for _ = 1 to n do
    let v = Prng.Dist.poisson_sample rng ~lambda in
    let bin = if v > k_max then k_max + 1 else v in
    observed.(bin) <- observed.(bin) + 1
  done;
  let expected =
    Array.init (k_max + 2) (fun k ->
        let p =
          if k <= k_max then Prng.Dist.poisson_pmf ~lambda k
          else 1. -. Prng.Dist.poisson_cdf ~lambda k_max
        in
        p *. float_of_int n)
  in
  let r = Stats.Gof.chi_square_test ~observed ~expected in
  checkb (Printf.sprintf "poisson GOF p=%.4f" r.p_value) true (r.p_value > 0.001)

let test_binomial_sampler_chi_square () =
  let rng = Prng.Splitmix.of_int 4242 in
  let n_trials = 20_000 in
  let nb = 10 and p = 0.4 in
  let observed = Array.make (nb + 1) 0 in
  for _ = 1 to n_trials do
    let v = Prng.Dist.binomial_sample rng ~n:nb ~p in
    observed.(v) <- observed.(v) + 1
  done;
  let choose n k =
    exp
      (Prng.Dist.log_factorial n -. Prng.Dist.log_factorial k
      -. Prng.Dist.log_factorial (n - k))
  in
  let expected =
    Array.init (nb + 1) (fun k ->
        choose nb k
        *. (p ** float_of_int k)
        *. ((1. -. p) ** float_of_int (nb - k))
        *. float_of_int n_trials)
  in
  let r = Stats.Gof.chi_square_test ~observed ~expected in
  checkb (Printf.sprintf "binomial GOF p=%.4f" r.p_value) true (r.p_value > 0.001)

(* ------------------------------------------------------------------ *)
(* KS test behaviour *)

let test_ks_statistic_exact () =
  (* single point at 0.5 vs U(0,1): D = 0.5 *)
  let d = Stats.Gof.ks_statistic ~cdf:(fun x -> x) [| 0.5 |] in
  float_close "single point" 0.5 d

let test_ks_accepts_uniform () =
  let rng = Prng.Splitmix.of_int 31415 in
  let xs = Array.init 5000 (fun _ -> Prng.Splitmix.float rng) in
  let r = Stats.Gof.ks_test ~cdf:(fun x -> Float.max 0. (Float.min 1. x)) xs in
  checkb (Printf.sprintf "uniform KS p=%.4f" r.p_value) true (r.p_value > 0.001)

let test_ks_rejects_shifted () =
  let rng = Prng.Splitmix.of_int 27182 in
  let xs = Array.init 2000 (fun _ -> Prng.Splitmix.float rng ** 2.) in
  (* squared uniforms are not uniform *)
  let r = Stats.Gof.ks_test ~cdf:(fun x -> Float.max 0. (Float.min 1. x)) xs in
  checkb "rejects" true (r.p_value < 1e-6)

let test_ks_accepts_exponential () =
  let rng = Prng.Splitmix.of_int 161803 in
  let rate = 2.5 in
  let xs = Array.init 5000 (fun _ -> Prng.Dist.exponential_sample rng ~rate) in
  let cdf x = if x < 0. then 0. else 1. -. exp (-.rate *. x) in
  let r = Stats.Gof.ks_test ~cdf xs in
  checkb (Printf.sprintf "exponential KS p=%.4f" r.p_value) true (r.p_value > 0.001)

let test_ks_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Gof.ks_statistic: empty sample")
    (fun () -> ignore (Stats.Gof.ks_statistic ~cdf:(fun x -> x) [||]))

let qcheck_p_values_in_range =
  QCheck.Test.make ~name:"chi-square p-values are probabilities" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 20) (int_range 0 100))
    (fun counts ->
      let observed = Array.of_list counts in
      QCheck.assume (Array.fold_left ( + ) 0 observed > 0);
      let r = Stats.Gof.chi_square_uniform_test ~observed in
      r.p_value >= 0. && r.p_value <= 1. && r.statistic >= 0.)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "stats.gof.special",
      [
        tc "log_gamma known" `Quick test_log_gamma_known;
        tc "log_gamma recurrence" `Quick test_log_gamma_recurrence;
        tc "log_gamma vs factorial" `Quick test_log_gamma_vs_factorial;
        tc "regularized gamma edges" `Quick test_regularized_gamma_edges;
        tc "poisson duality" `Quick test_regularized_gamma_poisson_duality;
        tc "chi-square cdf known" `Quick test_chi_square_cdf_known;
      ] );
    ( "stats.gof.chi_square",
      [
        tc "accepts exact" `Quick test_chi_square_accepts_exact;
        tc "rejects biased" `Quick test_chi_square_rejects_biased;
        tc "invalid" `Quick test_chi_square_invalid;
        tc "splitmix uniformity" `Slow test_splitmix_uniformity_chi_square;
        tc "poisson sampler GOF" `Slow test_poisson_sampler_chi_square;
        tc "binomial sampler GOF" `Slow test_binomial_sampler_chi_square;
        QCheck_alcotest.to_alcotest qcheck_p_values_in_range;
      ] );
    ( "stats.gof.ks",
      [
        tc "statistic exact" `Quick test_ks_statistic_exact;
        tc "accepts uniform" `Slow test_ks_accepts_uniform;
        tc "rejects shifted" `Quick test_ks_rejects_shifted;
        tc "accepts exponential" `Slow test_ks_accepts_exponential;
        tc "empty" `Quick test_ks_empty;
      ] );
  ]
