(* Tests for the verification layer: the adversary-contract validator,
   the event-stream spec checker, the schedule search, and the bounded
   object space. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let rebatching_algo ?(t0 = 3) n =
  let instance = Renaming.Rebatching.make ~t0 ~n () in
  fun env -> Renaming.Rebatching.get_name env instance

(* ------------------------------------------------------------------ *)
(* Validator *)

let test_validator_passes_builtins () =
  let n = 64 in
  let algo = rebatching_algo n in
  List.iter
    (fun adv ->
      let adversary = Sim.Validator.validated adv in
      let r = Sim.Runner.run ~adversary ~seed:3 ~n ~algo () in
      checkb
        (Printf.sprintf "%s passes validation" adversary.Sim.Adversary.name)
        true
        (Sim.Runner.check_unique_names r))
    Sim.Adversary.all_builtin

let test_validator_passes_wrappers () =
  let n = 48 in
  let algo = rebatching_algo n in
  List.iter
    (fun adv ->
      let adversary = Sim.Validator.validated adv in
      let r = Sim.Runner.run ~adversary ~seed:4 ~n ~algo () in
      checkb "wrapped strategies pass" true (Sim.Runner.check_unique_names r))
    [
      Sim.Adversary.with_crashes ~fraction:0.3 Sim.Adversary.greedy_collision;
      Sim.Arrivals.staggered ~interval:5 Sim.Adversary.random;
      Sim.Arrivals.bursts ~size:8 ~gap:40 Sim.Adversary.round_robin;
    ]

let test_validator_passes_replay () =
  let n = 32 in
  let algo = rebatching_algo n in
  let recorder, extract = Sim.Trace.recorder Sim.Adversary.random in
  let _ = Sim.Runner.run ~adversary:recorder ~seed:5 ~n ~algo () in
  let adversary = Sim.Validator.validated (Sim.Trace.replayer (extract ())) in
  let r = Sim.Runner.run ~adversary ~seed:5 ~n ~algo () in
  checkb "replay passes validation" true (Sim.Runner.check_unique_names r)

let test_validator_catches_bad_strategy () =
  (* A strategy that steps pid 0 unconditionally violates the contract
     the moment pid 0 finishes. *)
  let bad =
    {
      Sim.Adversary.name = "always-zero";
      make =
        (fun _ctx ->
          {
            Sim.Adversary.on_wait = (fun ~pid:_ ~loc:_ ~op:_ -> ());
            on_tas = (fun ~loc:_ ~won:_ -> ());
            on_settle = (fun ~pid:_ -> ());
            pick = (fun () -> Sim.Adversary.Step 0);
          });
    }
  in
  let algo = rebatching_algo 4 in
  checkb "raises contract violation" true
    (try
       ignore (Sim.Runner.run ~adversary:(Sim.Validator.validated bad) ~seed:6 ~n:4 ~algo ());
       false
     with Sim.Validator.Contract_violation _ -> true)

(* ------------------------------------------------------------------ *)
(* Spec checker *)

let run_with_spec ?adversary ~seed ~n ~attach algo =
  let spec = Renaming.Spec.create () in
  attach spec;
  let r =
    Sim.Runner.run ?adversary ~on_event:(Renaming.Spec.observe spec) ~seed ~n
      ~algo ()
  in
  (r, spec)

let test_spec_clean_rebatching () =
  let instance = Renaming.Rebatching.make ~t0:3 ~n:128 () in
  let algo env = Renaming.Rebatching.get_name env instance in
  let _, spec =
    run_with_spec ~seed:7 ~n:128
      ~attach:(fun s -> Renaming.Spec.with_rebatching s instance)
      algo
  in
  Alcotest.(check (list string)) "no violations" [] (Renaming.Spec.violations spec);
  checkb "saw events" true (Renaming.Spec.events_seen spec > 0)

let test_spec_clean_adaptive () =
  let space = Renaming.Object_space.create ~t0:3 () in
  let algo env = Renaming.Adaptive_rebatching.get_name env space in
  let _, spec =
    run_with_spec ~seed:8 ~n:100
      ~attach:(fun s -> Renaming.Spec.with_object_space s space)
      algo
  in
  Alcotest.(check (list string)) "no violations" [] (Renaming.Spec.violations spec)

let test_spec_clean_fast_adaptive_under_greedy () =
  let space = Renaming.Object_space.create () in
  let algo env = Renaming.Fast_adaptive_rebatching.get_name env space in
  let _, spec =
    run_with_spec ~adversary:Sim.Adversary.greedy_collision ~seed:9 ~n:80
      ~attach:(fun s -> Renaming.Spec.with_object_space s space)
      algo
  in
  Alcotest.(check (list string)) "no violations" [] (Renaming.Spec.violations spec)

let test_spec_clean_long_lived_churn () =
  let object_ = Renaming.Long_lived.make ~t0:3 ~n:32 () in
  let algo (env : Renaming.Env.t) =
    let rec cycle r =
      match Renaming.Long_lived.acquire env object_ with
      | None -> None
      | Some u ->
        if r = 0 then Some u
        else begin
          Renaming.Long_lived.release env object_ u;
          cycle (r - 1)
        end
    in
    cycle 10
  in
  let _, spec =
    run_with_spec ~seed:10 ~n:32
      ~attach:(fun s ->
        Renaming.Spec.with_rebatching s (Renaming.Long_lived.instance object_))
      algo
  in
  Alcotest.(check (list string)) "no violations" [] (Renaming.Spec.violations spec)

let test_spec_flags_double_win () =
  let spec = Renaming.Spec.create () in
  let probe ~pid won =
    Renaming.Spec.observe spec ~pid
      (Renaming.Events.Probe { obj = 0; batch = 0; location = 5; won })
  in
  probe ~pid:0 true;
  probe ~pid:1 true;
  (* impossible double win *)
  checki "one violation" 1 (List.length (Renaming.Spec.violations spec))

let test_spec_flags_lost_probe_on_free () =
  let spec = Renaming.Spec.create () in
  Renaming.Spec.observe spec ~pid:0
    (Renaming.Events.Probe { obj = 0; batch = 0; location = 9; won = false });
  checki "one violation" 1 (List.length (Renaming.Spec.violations spec))

let test_spec_flags_phantom_acquire () =
  let spec = Renaming.Spec.create () in
  Renaming.Spec.observe spec ~pid:0
    (Renaming.Events.Name_acquired { obj = 0; name = 3 });
  checkb "violation mentions winning" true
    (match Renaming.Spec.violations spec with
    | [ v ] -> String.length v > 0
    | _ -> false)

let test_spec_flags_bad_release () =
  let spec = Renaming.Spec.create () in
  Renaming.Spec.observe spec ~pid:0
    (Renaming.Events.Name_released { obj = 0; name = 3 });
  checki "one violation" 1 (List.length (Renaming.Spec.violations spec))

let test_spec_flags_out_of_batch_probe () =
  let instance = Renaming.Rebatching.make ~t0:3 ~n:64 () in
  let spec = Renaming.Spec.create () in
  Renaming.Spec.with_rebatching spec instance;
  (* batch 1 starts at offset 64; location 5 is inside batch 0 *)
  Renaming.Spec.observe spec ~pid:0
    (Renaming.Events.Probe { obj = 0; batch = 1; location = 5; won = true });
  checki "one violation" 1 (List.length (Renaming.Spec.violations spec))

let qcheck_spec_all_algorithms_clean =
  QCheck.Test.make ~name:"spec checker finds no violations in real runs" ~count:20
    QCheck.(pair small_int (int_range 2 80))
    (fun (seed, n) ->
      let space = Renaming.Object_space.create ~t0:3 () in
      let checks =
        [
          (fun () ->
            let instance = Renaming.Rebatching.make ~n () in
            let algo env = Renaming.Rebatching.get_name env instance in
            let _, spec =
              run_with_spec ~seed ~n
                ~attach:(fun s -> Renaming.Spec.with_rebatching s instance)
                algo
            in
            Renaming.Spec.violations spec = []);
          (fun () ->
            let algo env = Renaming.Fast_adaptive_rebatching.get_name env space in
            let _, spec =
              run_with_spec ~seed ~n
                ~attach:(fun s -> Renaming.Spec.with_object_space s space)
                algo
            in
            Renaming.Spec.violations spec = []);
        ]
      in
      List.for_all (fun f -> f ()) checks)

(* ------------------------------------------------------------------ *)
(* Search *)

let test_search_monotone () =
  let algo = rebatching_algo 48 in
  let r =
    Sim.Search.hill_climb ~seed:1 ~n:48 ~algo ~rounds:5 ~mutants_per_round:4
      Sim.Search.Max_steps
  in
  checkb "best >= initial" true (r.best_score >= r.initial_score);
  checki "evaluations" (1 + (5 * 4)) r.evaluations;
  (* improvements are strictly increasing *)
  let rec increasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  checkb "improvements increase" true (increasing r.improvements)

let test_search_best_trace_reproduces_score () =
  let n = 48 in
  let algo = rebatching_algo n in
  let r =
    Sim.Search.hill_climb ~seed:2 ~n ~algo ~rounds:8 ~mutants_per_round:4
      Sim.Search.Max_steps
  in
  let replayed =
    Sim.Runner.run ~adversary:(Sim.Trace.replayer r.best_trace) ~seed:2 ~n ~algo ()
  in
  checki "trace reproduces best score" r.best_score replayed.max_steps

let test_search_total_steps_objective () =
  let algo = rebatching_algo 32 in
  let r =
    Sim.Search.hill_climb ~seed:3 ~n:32 ~algo ~rounds:4 ~mutants_per_round:3
      Sim.Search.Total_steps
  in
  checkb "found something" true (r.best_score > 0)

let test_search_invalid () =
  let algo = rebatching_algo 4 in
  Alcotest.check_raises "n=0" (Invalid_argument "Search.hill_climb: n must be >= 1")
    (fun () ->
      ignore (Sim.Search.hill_climb ~seed:1 ~n:0 ~algo Sim.Search.Max_steps));
  Alcotest.check_raises "rounds=0"
    (Invalid_argument "Search.hill_climb: budgets must be >= 1") (fun () ->
      ignore
        (Sim.Search.hill_climb ~seed:1 ~n:4 ~algo ~rounds:0 Sim.Search.Max_steps))

(* ------------------------------------------------------------------ *)
(* Bounded object space *)

let test_cap_limits_objects () =
  let space = Renaming.Object_space.create ~cap:5 () in
  checki "cap" 5 (Renaming.Object_space.cap space);
  ignore (Renaming.Object_space.obj space 5);
  Alcotest.check_raises "beyond cap"
    (Invalid_argument "Object_space: object index out of range") (fun () ->
      ignore (Renaming.Object_space.obj space 6))

let test_cap_bounds_space () =
  (* With n known, capping at the first power-of-two index whose object
     holds >= n processes keeps total space O(n); the race ladder only
     visits power-of-two indices, so the cap must be one of them, and the
     paper's t0 makes failing that level negligible. *)
  let n = 64 in
  let cap = 8 in
  (* n_8 = 256 >= n *)
  let space = Renaming.Object_space.create ~cap () in
  let algo env = Renaming.Adaptive_rebatching.get_name env space in
  let r = Sim.Runner.run ~seed:11 ~n ~algo () in
  checkb "unique" true (Sim.Runner.check_unique_names r);
  checkb "bounded space" true
    (r.space_used <= Renaming.Object_space.total_size space cap)

let test_cap_overload_returns_none () =
  (* Far more processes than the capped space can serve: the algorithm
     must fail gracefully (None), never block or duplicate. *)
  let space = Renaming.Object_space.create ~cap:2 ~t0:1 () in
  let algo env = Renaming.Adaptive_rebatching.get_name env space in
  let r = Sim.Runner.run ~seed:12 ~n:64 ~algo () in
  let winners = Array.to_list r.names |> List.filter_map (fun x -> x) in
  checkb "some failures" true (List.length winners < 64);
  checki "winners distinct" (List.length winners)
    (List.length (List.sort_uniq compare winners))

let test_cap_invalid () =
  Alcotest.check_raises "cap 0"
    (Invalid_argument "Object_space.create: cap outside [1, max_index]")
    (fun () -> ignore (Renaming.Object_space.create ~cap:0 ()))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sim.validator",
      [
        tc "builtins pass" `Quick test_validator_passes_builtins;
        tc "wrappers pass" `Quick test_validator_passes_wrappers;
        tc "replay passes" `Quick test_validator_passes_replay;
        tc "catches bad strategy" `Quick test_validator_catches_bad_strategy;
      ] );
    ( "renaming.spec",
      [
        tc "clean rebatching" `Quick test_spec_clean_rebatching;
        tc "clean adaptive" `Quick test_spec_clean_adaptive;
        tc "clean fast under greedy" `Quick test_spec_clean_fast_adaptive_under_greedy;
        tc "clean long-lived churn" `Quick test_spec_clean_long_lived_churn;
        tc "flags double win" `Quick test_spec_flags_double_win;
        tc "flags lost probe on free" `Quick test_spec_flags_lost_probe_on_free;
        tc "flags phantom acquire" `Quick test_spec_flags_phantom_acquire;
        tc "flags bad release" `Quick test_spec_flags_bad_release;
        tc "flags out-of-batch probe" `Quick test_spec_flags_out_of_batch_probe;
        QCheck_alcotest.to_alcotest qcheck_spec_all_algorithms_clean;
      ] );
    ( "sim.search",
      [
        tc "monotone" `Quick test_search_monotone;
        tc "best trace reproduces" `Quick test_search_best_trace_reproduces_score;
        tc "total steps objective" `Quick test_search_total_steps_objective;
        tc "invalid" `Quick test_search_invalid;
      ] );
    ( "renaming.object_space_cap",
      [
        tc "cap limits objects" `Quick test_cap_limits_objects;
        tc "cap bounds space" `Quick test_cap_bounds_space;
        tc "cap overload graceful" `Quick test_cap_overload_returns_none;
        tc "cap invalid" `Quick test_cap_invalid;
      ] );
  ]
