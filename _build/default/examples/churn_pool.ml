(* Long-lived renaming as a lock-free resource pool, on real multicore
   atomics.

   A fixed set of "connections" (the namespace of a long-lived ReBatching
   object) is shared by workers that repeatedly check a connection out,
   use it, and return it.  Checking out is name acquisition; returning is
   a TAS reset; between the two the worker has exclusive ownership with
   no lock, no CAS loop over a free list, and no coordinator.

   The run prints the reuse factor (checkouts per connection) and
   verifies exclusivity by having each worker stamp the connection's
   private cell while holding it.

   Run with:  dune exec examples/churn_pool.exe *)

let workers = 32
let rounds = 200

let () =
  let pool = Renaming.Long_lived.make ~t0:3 ~n:workers () in
  let m = Renaming.Rebatching.size (Renaming.Long_lived.instance pool) in
  Printf.printf "pool: %d connections, %d workers x %d checkouts each\n" m
    workers rounds;

  (* Exclusivity witness: one counter cell per connection; a violation of
     mutual exclusion on a connection would lose increments. *)
  let usage = Array.init m (fun _ -> Atomic.make 0) in
  let stamped = Array.init m (fun _ -> ref 0) in

  let algo (env : Renaming.Env.t) =
    let rec cycle r last =
      if r = 0 then last
      else
        match Renaming.Long_lived.acquire env pool with
        | None -> None
        | Some conn ->
          (* "use" the connection: non-atomic increment is safe only if
             ownership is exclusive — that is the property on trial *)
          incr stamped.(conn);
          ignore (Atomic.fetch_and_add usage.(conn) 1);
          Renaming.Long_lived.release env pool conn;
          cycle (r - 1) (Some conn)
    in
    cycle rounds None
  in
  let result =
    Shm.Domain_runner.run ~domains:4 ~seed:42 ~procs:workers ~capacity:m ~algo ()
  in

  let total_checkouts = workers * rounds in
  let atomic_total =
    Array.fold_left (fun acc c -> acc + Atomic.get c) 0 usage
  in
  let plain_total = Array.fold_left (fun acc r -> acc + !r) 0 stamped in
  let busiest = Array.fold_left (fun acc c -> max acc (Atomic.get c)) 0 usage in
  let used =
    Array.fold_left (fun acc c -> if Atomic.get c > 0 then acc + 1 else acc) 0 usage
  in
  Printf.printf "checkouts: %d | connections ever used: %d of %d | busiest: %d\n"
    total_checkouts used m busiest;
  Printf.printf "wall: %.2f ms | probes/checkout: %.2f\n"
    (result.wall_ns /. 1e6)
    (float_of_int result.total_probes /. float_of_int total_checkouts);
  Printf.printf "atomic counter total: %d (expected %d)\n" atomic_total
    total_checkouts;
  Printf.printf
    "plain counter total:  %d (equals expected iff ownership was exclusive)\n"
    plain_total;
  if plain_total <> total_checkouts then
    print_endline "EXCLUSIVITY VIOLATION — this should never print"
  else
    Printf.printf "reuse factor: %.1f checkouts per connection, no lock anywhere\n"
      (float_of_int total_checkouts /. float_of_int used)
