(* Adversarial scheduling demo.

   Runs the same ReBatching instance under each built-in adversary — from
   the benign solo schedule to the strong greedy-collision strategy, with
   and without crash injection — and shows that the step-complexity
   guarantee is schedule-independent while the contention profile is not.

   Run with:  dune exec examples/adversary_demo.exe *)

let n = 512

let describe name (result : Sim.Runner.result) =
  let survivors =
    Array.length result.names - result.crash_count
  in
  Printf.printf "%-18s max steps %3d | avg %5.2f | crashes %3d | unique %b\n" name
    result.max_steps
    (float_of_int result.total_steps /. float_of_int (max 1 survivors))
    result.crash_count
    (Sim.Runner.check_unique_names result)

let () =
  let instance = Renaming.Rebatching.make ~t0:3 ~n () in
  let algo env = Renaming.Rebatching.get_name env instance in
  Printf.printf "ReBatching, n=%d, tuned probe budget t0=3, namespace %d\n\n" n
    (Renaming.Rebatching.size instance);

  List.iter
    (fun adversary ->
      let result = Sim.Runner.run ~adversary ~seed:99 ~n ~algo () in
      describe adversary.Sim.Adversary.name result)
    Sim.Adversary.all_builtin;

  print_newline ();
  List.iter
    (fun fraction ->
      let adversary =
        Sim.Adversary.with_crashes ~fraction Sim.Adversary.greedy_collision
      in
      let result = Sim.Runner.run ~adversary ~seed:99 ~n ~algo () in
      describe (Printf.sprintf "greedy+crash %.0f%%" (100. *. fraction)) result)
    [ 0.1; 0.5; 0.9 ];

  (* Show the contention profile the greedy adversary creates: the step
     histogram has a heavier tail than under the random scheduler. *)
  let histogram adversary =
    let result = Sim.Runner.run ~adversary ~seed:99 ~n ~algo () in
    let hist = Stats.Histogram.create () in
    Array.iteri
      (fun pid s -> if not result.crashed.(pid) then Stats.Histogram.add hist s)
      result.steps;
    hist
  in
  print_endline "\nstep distribution under the random scheduler:";
  print_string (Stats.Histogram.render ~width:40 (histogram Sim.Adversary.random));
  print_endline "\nstep distribution under the greedy-collision adversary:";
  print_string
    (Stats.Histogram.render ~width:40 (histogram Sim.Adversary.greedy_collision))
