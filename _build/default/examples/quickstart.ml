(* Quickstart: rename 1000 concurrent processes into a namespace of size
   2000 with ReBatching, under a random scheduler on the simulator.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let n = 1000 in

  (* 1. Describe a ReBatching instance: namespace (1+eps)n, here eps = 1.
        The instance is immutable and shared by all processes. *)
  let instance = Renaming.Rebatching.make ~n () in
  Printf.printf "ReBatching instance: n=%d, namespace m=%d, %d batches\n" n
    (Renaming.Rebatching.size instance)
    (Renaming.Rebatching.batch_count instance);
  for i = 0 to Renaming.Rebatching.kappa instance do
    Printf.printf "  batch %d: %4d TAS objects, %2d probes per process\n" i
      (Renaming.Rebatching.batch_size instance i)
      (Renaming.Rebatching.probe_budget instance i)
  done;

  (* 2. The algorithm is a function of an environment; the simulator
        provides the environment (TAS effect + per-process coins). *)
  let algo env = Renaming.Rebatching.get_name env instance in

  (* 3. Run all n processes to completion under the default random
        adversary.  Everything is deterministic in the seed. *)
  let result = Sim.Runner.run ~seed:2013 ~n ~algo () in

  (* 4. Inspect the outcome. *)
  Printf.printf "\nall names unique: %b\n" (Sim.Runner.check_unique_names result);
  Printf.printf "largest name: %d (namespace bound %d)\n"
    (Sim.Runner.max_name result)
    (Renaming.Rebatching.size instance - 1);
  Printf.printf "worst per-process steps: %d\n" result.max_steps;
  Printf.printf "total steps: %d (%.1f per process)\n" result.total_steps
    (float_of_int result.total_steps /. float_of_int n);

  let hist = Stats.Histogram.create () in
  Array.iter (fun s -> Stats.Histogram.add hist s) result.steps;
  print_endline "\nper-process step distribution:";
  print_string (Stats.Histogram.render ~width:50 hist);

  (* 5. First few assignments, for flavour. *)
  print_endline "\nfirst 10 processes:";
  for pid = 0 to 9 do
    match result.names.(pid) with
    | Some name -> Printf.printf "  process %d -> name %d (%d steps)\n" pid name
                     result.steps.(pid)
    | None -> Printf.printf "  process %d -> no name!\n" pid
  done
