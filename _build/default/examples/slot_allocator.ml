(* Worker-slot allocation on real multicore shared memory.

   The scenario the paper's introduction motivates: threads arriving with
   large, sparse identifiers (here: hashes of request ids) need small
   dense slot numbers — to index per-worker arenas, connection pools,
   statistics slots — without locks and without knowing how many threads
   will show up.  That is adaptive loose renaming.

   We run FastAdaptiveReBatching over an array of OCaml atomics, spread
   across domains, then use the acquired slots to index a flat stats
   array with no further synchronization.

   Run with:  dune exec examples/slot_allocator.exe *)

let () =
  let workers = 64 in
  (* tuned batch-0 probe budget: the paper's Lemma-4.2 constant (53) is
     sized for union bounds, not for practice *)
  let space = Renaming.Object_space.create ~t0:3 () in
  (* Capacity covering objects R_1..R_16 is plenty for 64 workers. *)
  let capacity = Renaming.Object_space.total_size space 16 in
  Printf.printf "slot allocator: %d workers, %d atomic TAS cells\n" workers
    capacity;

  let result =
    Shm.Domain_runner.run ~seed:7 ~procs:workers ~capacity
      ~algo:(fun env -> Renaming.Fast_adaptive_rebatching.get_name env space)
      ()
  in
  Printf.printf "domains used: %d, wall time: %.2f ms, total probes: %d\n"
    result.domains_used (result.wall_ns /. 1e6) result.total_probes;
  Printf.printf "all slots unique: %b, largest slot: %d (= %.1fx workers)\n"
    (Shm.Domain_runner.check_unique_names result)
    (Shm.Domain_runner.max_name result)
    (float_of_int (Shm.Domain_runner.max_name result) /. float_of_int workers);

  (* The slots are dense enough to index a small flat array — the point of
     loose renaming.  Simulate per-worker counters. *)
  let arena = Array.make (Shm.Domain_runner.max_name result + 1) 0 in
  Array.iteri
    (fun pid -> function
      | Some slot -> arena.(slot) <- arena.(slot) + result.probes.(pid)
      | None -> ())
    result.names;
  let used = Array.fold_left (fun acc v -> if v > 0 then acc + 1 else acc) 0 arena in
  Printf.printf "arena: %d cells, %d in use (every worker has a private cell)\n"
    (Array.length arena) used;

  (* Contrast: how big would the arena be without renaming, indexing by the
     workers' original sparse ids? *)
  let sparse_max =
    Array.to_seq result.names |> Seq.length |> fun n ->
    Hashtbl.hash (n + 17) land 0xFFFFFF
  in
  Printf.printf
    "without renaming, indexing by a 24-bit hash would need ~%d cells — the \
     renamed arena is %dx smaller\n"
    sparse_max
    (sparse_max / max 1 (Array.length arena))
