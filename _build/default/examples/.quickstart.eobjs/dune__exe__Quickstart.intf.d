examples/quickstart.mli:
