examples/quickstart.ml: Array Printf Renaming Sim Stats
