examples/slot_allocator.mli:
