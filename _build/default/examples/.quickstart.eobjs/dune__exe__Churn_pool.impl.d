examples/churn_pool.ml: Array Atomic Printf Renaming Shm
