examples/churn_pool.mli:
