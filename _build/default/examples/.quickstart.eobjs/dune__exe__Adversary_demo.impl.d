examples/adversary_demo.ml: Array List Printf Renaming Sim Stats
