examples/slot_allocator.ml: Array Hashtbl Printf Renaming Seq Shm
