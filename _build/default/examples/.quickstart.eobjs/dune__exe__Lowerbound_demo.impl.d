examples/lowerbound_demo.ml: Array Float List Lowerbound Printf String
