(* Lower-bound construction demo (paper §6).

   Builds the layered adversarial execution with Poisson-marked processes
   and shows the doubly-exponential decay of survivors across layers —
   slow enough that extinction takes Omega(log log n) layers, which is
   what makes every TAS-based loose renaming algorithm pay that many
   steps.

   Run with:  dune exec examples/lowerbound_demo.exe *)

let () =
  print_endline "marked-process survival in the layered execution\n";
  List.iter
    (fun n ->
      let config = Lowerbound.Marking.default_config ~n in
      let result = Lowerbound.Marking.run ~seed:42 config in
      Printf.printf "n = %-6d (s = %d locations/layer)\n" n config.locations;
      Array.iter
        (fun (ls : Lowerbound.Marking.layer_stats) ->
          let bar_cells = int_of_float (Float.round (20. *. log (1. +. float_of_int ls.marked))) in
          let bar = String.make (min 70 bar_cells) '#' in
          Printf.printf "  layer %2d | marked %7d | rate %9.2f | %s\n" ls.layer
            ls.marked ls.rate bar)
        result.series;
      let predicted =
        Lowerbound.Theory.predicted_layers ~n ~s:(config.locations / 2)
          ~m:(config.locations / 2)
      in
      Printf.printf "  survived %d layers (Final Argument predicts >= %.2f)\n\n"
        (Lowerbound.Marking.layers_survived result)
        predicted)
    [ 256; 4096; 65536 ];
  Printf.printf
    "Theorem 6.1: survival past Omega(log log n) layers happens with \
     probability >= %.4f\n"
    (Lowerbound.Theory.survival_probability_bound ());
  print_endline
    "(the bar is logarithmic; note how slowly the layers whittle the marked set)"
