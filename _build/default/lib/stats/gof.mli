(** Goodness-of-fit tests: Pearson chi-square and Kolmogorov–Smirnov.

    The PRNG layer underpins every probabilistic claim in this
    reproduction, so its tests should be distributional, not just
    moment-based.  This module provides the two classical tests with
    self-contained numerics (regularized incomplete gamma for the
    chi-square tail, the Kolmogorov series for KS), good to a few units
    in the last place over the ranges the tests exercise. *)

(** {1 Special functions} *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0] (Lanczos approximation,
    |relative error| < 1e-10 on [0.5, 100]). *)

val regularized_gamma_p : a:float -> x:float -> float
(** [regularized_gamma_p ~a ~x] is [P(a, x) = gamma(a, x) / Gamma(a)],
    the regularized lower incomplete gamma function, for [a > 0],
    [x >= 0].  Series expansion for [x < a + 1], Lentz continued fraction
    otherwise. *)

(** {1 Chi-square} *)

val chi_square_cdf : df:int -> float -> float
(** [chi_square_cdf ~df x] is [P(X <= x)] for [X ~ chi^2(df)].
    @raise Invalid_argument if [df < 1] or [x < 0]. *)

type test_result = {
  statistic : float;
  p_value : float;  (** probability of a statistic at least this extreme *)
}

val chi_square_test : observed:int array -> expected:float array -> test_result
(** Pearson test of observed counts against expected counts (same
    length; [df = length - 1]).  Expected cells must be positive; the
    classical validity rule of thumb (expected >= 5) is the caller's
    responsibility.  @raise Invalid_argument on length mismatch, empty
    arrays or nonpositive expectations. *)

val chi_square_uniform_test : observed:int array -> test_result
(** [chi_square_test] against the uniform distribution over the cells. *)

(** {1 Kolmogorov–Smirnov} *)

val ks_statistic : cdf:(float -> float) -> float array -> float
(** [ks_statistic ~cdf xs] is the two-sided statistic
    [D_n = sup |F_n - F|].  @raise Invalid_argument on an empty
    sample. *)

val ks_test : cdf:(float -> float) -> float array -> test_result
(** One-sample KS test against a {i continuous} reference CDF, with the
    Marsaglia–Tsang–Wang style asymptotic p-value
    (accurate for [n >= 10] or so). *)
