(** Least-squares fits of measured complexity against model curves.

    The paper's claims are asymptotic shapes — [log log n + O(1)],
    [O((log log k)^2)], [O(k log log k)], [Theta(log n)] for the uniform
    baseline.  To check a shape empirically we fit the measurement [y]
    against [y = a + b * f(n)] for each candidate transform [f] and
    compare coefficients of determination: the claimed transform should
    fit markedly better (higher R^2) than faster-growing alternatives,
    with a stable slope [b]. *)

type fit = {
  slope : float;  (** [b] in [y = a + b * f(x)] *)
  intercept : float;  (** [a] *)
  r2 : float;  (** coefficient of determination; [1.] is a perfect fit *)
}

val linear_fit : float array -> float array -> fit
(** [linear_fit xs ys] fits [y = a + b x] by ordinary least squares.
    @raise Invalid_argument if the arrays differ in length or have fewer
    than two points.  If all [xs] are equal, [slope] is [0.] and [r2] is
    [0.]. *)

(** Named model transforms for complexity fitting.  All treat their
    argument as a problem size [n >= 2]; values are clamped below at 2 to
    keep iterated logarithms defined. *)
type model =
  | Const  (** f(n) = 1 — flat *)
  | Log_log  (** f(n) = ln ln n — the paper's headline rate *)
  | Log_log_sq  (** f(n) = (ln ln n)^2 — adaptive individual steps *)
  | Log  (** f(n) = ln n — the uniform-probing baseline rate *)
  | Sqrt  (** f(n) = sqrt n *)
  | Linear  (** f(n) = n *)
  | N_log_log  (** f(n) = n ln ln n — FastAdaptive total steps *)

val model_name : model -> string
val apply_model : model -> float -> float

val fit_model : model -> sizes:float array -> values:float array -> fit
(** [fit_model m ~sizes ~values] fits [values] against the transform of
    [sizes] under model [m]. *)

val best_model : model list -> sizes:float array -> values:float array -> model * fit
(** [best_model models ~sizes ~values] returns the model with the highest
    R^2 among [models] (ties broken by list order).
    @raise Invalid_argument on an empty model list. *)
