(** Bootstrap confidence intervals.

    The w.h.p. claims under test concern tails and maxima, whose sampling
    distributions are far from normal, so the normal-approximation CI in
    {!Summary} is not enough for them.  The percentile bootstrap makes no
    distributional assumption: resample the data with replacement many
    times, recompute the statistic, and read the interval off the
    resampled quantiles.  Used by the tail-risk experiment (T12). *)

type interval = { low : float; high : float; point : float }

val ci :
  Prng.Splitmix.t ->
  ?resamples:int ->
  ?confidence:float ->
  statistic:(float array -> float) ->
  float array ->
  interval
(** [ci rng ~statistic xs] is the percentile-bootstrap confidence
    interval for [statistic] on the sample [xs].

    - [resamples] (default 1000): bootstrap iterations;
    - [confidence] (default 0.95): two-sided level.

    [point] is the statistic of the original sample.  @raise
    Invalid_argument on an empty sample, [resamples < 1] or [confidence]
    outside (0, 1). *)

val mean_ci : Prng.Splitmix.t -> ?confidence:float -> float array -> interval
(** {!ci} specialized to the mean. *)

val quantile_ci :
  Prng.Splitmix.t -> ?confidence:float -> q:float -> float array -> interval
(** {!ci} specialized to the [q]-quantile ({!Summary.percentile}). *)
