type t = {
  mutable counts : int array;  (* index = value *)
  mutable total : int;
  mutable max_value : int;
}

let create () = { counts = Array.make 16 0; total = 0; max_value = -1 }

let ensure_capacity t v =
  let n = Array.length t.counts in
  if v >= n then begin
    let n' = max (v + 1) (2 * n) in
    let counts = Array.make n' 0 in
    Array.blit t.counts 0 counts 0 n;
    t.counts <- counts
  end

let add_many t v count =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  if count < 0 then invalid_arg "Histogram.add_many: negative count";
  ensure_capacity t v;
  t.counts.(v) <- t.counts.(v) + count;
  t.total <- t.total + count;
  if count > 0 && v > t.max_value then t.max_value <- v

let add t v = add_many t v 1

let count t v = if v < 0 || v >= Array.length t.counts then 0 else t.counts.(v)
let total t = t.total
let max_value t = t.max_value

let mean t =
  if t.total = 0 then nan
  else begin
    let sum = ref 0 in
    for v = 0 to t.max_value do
      sum := !sum + (v * t.counts.(v))
    done;
    float_of_int !sum /. float_of_int t.total
  end

let to_alist t =
  let rec collect v acc =
    if v < 0 then acc
    else if t.counts.(v) = 0 then collect (v - 1) acc
    else collect (v - 1) ((v, t.counts.(v)) :: acc)
  in
  collect t.max_value []

let render ?(width = 40) t =
  let buf = Buffer.create 256 in
  let peak =
    List.fold_left (fun acc (_, c) -> max acc c) 1 (to_alist t)
  in
  List.iter
    (fun (v, c) ->
      let bar_len = max 1 (c * width / peak) in
      Buffer.add_string buf
        (Printf.sprintf "%6d | %-*s %d\n" v width (String.make bar_len '#') c))
    (to_alist t);
  Buffer.contents buf
