type fit = { slope : float; intercept : float; r2 : float }

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then
    invalid_arg "Regression.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Regression.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sum = Array.fold_left ( +. ) 0. in
  let mean_x = sum xs /. fn and mean_y = sum ys /. fn in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mean_x and dy = ys.(i) -. mean_y in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. then { slope = 0.; intercept = mean_y; r2 = 0. }
  else begin
    let slope = !sxy /. !sxx in
    let intercept = mean_y -. (slope *. mean_x) in
    let r2 =
      if !syy = 0. then 1. (* constant y fitted exactly by the intercept *)
      else !sxy *. !sxy /. (!sxx *. !syy)
    in
    { slope; intercept; r2 }
  end

type model = Const | Log_log | Log_log_sq | Log | Sqrt | Linear | N_log_log

let model_name = function
  | Const -> "1"
  | Log_log -> "loglog n"
  | Log_log_sq -> "(loglog n)^2"
  | Log -> "log n"
  | Sqrt -> "sqrt n"
  | Linear -> "n"
  | N_log_log -> "n loglog n"

let apply_model m x =
  let x = Float.max 2. x in
  (* clamp so ln ln x is defined; also guards ln ln e = 0 regions *)
  let ll = log (Float.max 1.0001 (log x)) in
  match m with
  | Const -> 1.
  | Log_log -> ll
  | Log_log_sq -> ll *. ll
  | Log -> log x
  | Sqrt -> sqrt x
  | Linear -> x
  | N_log_log -> x *. ll

let fit_model m ~sizes ~values =
  linear_fit (Array.map (apply_model m) sizes) values

let best_model models ~sizes ~values =
  match models with
  | [] -> invalid_arg "Regression.best_model: empty model list"
  | first :: rest ->
    let best, best_fit =
      List.fold_left
        (fun (bm, bf) m ->
          let f = fit_model m ~sizes ~values in
          if f.r2 > bf.r2 then (m, f) else (bm, bf))
        (first, fit_model first ~sizes ~values)
        rest
    in
    (best, best_fit)
