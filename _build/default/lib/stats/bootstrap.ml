type interval = { low : float; high : float; point : float }

let ci rng ?(resamples = 1000) ?(confidence = 0.95) ~statistic xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.ci: empty sample";
  if resamples < 1 then invalid_arg "Bootstrap.ci: resamples must be >= 1";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Bootstrap.ci: confidence outside (0, 1)";
  let point = statistic xs in
  let stats =
    Array.init resamples (fun _ ->
        let resample = Array.init n (fun _ -> xs.(Prng.Splitmix.int rng n)) in
        statistic resample)
  in
  let alpha = (1. -. confidence) /. 2. in
  {
    low = Summary.percentile stats alpha;
    high = Summary.percentile stats (1. -. alpha);
    point;
  }

let mean_ci rng ?confidence xs = ci rng ?confidence ~statistic:Summary.mean xs

let quantile_ci rng ?confidence ~q xs =
  if q < 0. || q > 1. then invalid_arg "Bootstrap.quantile_ci: q outside [0,1]";
  ci rng ?confidence ~statistic:(fun sample -> Summary.percentile sample q) xs
