lib/stats/regression.mli:
