lib/stats/gof.mli:
