lib/stats/histogram.mli:
