lib/stats/gof.ml: Array Float
