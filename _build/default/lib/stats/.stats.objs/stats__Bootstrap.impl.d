lib/stats/bootstrap.ml: Array Prng Summary
