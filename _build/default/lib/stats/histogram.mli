(** Integer histograms with ASCII rendering.

    Used to report distributions of per-process step counts and of
    lower-bound survivor counts, both in examples and in experiment
    output. *)

type t
(** A mutable histogram over non-negative integer values. *)

val create : unit -> t

val add : t -> int -> unit
(** [add t v] counts one occurrence of value [v].
    @raise Invalid_argument on negative [v]. *)

val add_many : t -> int -> int -> unit
(** [add_many t v count] counts [count] occurrences of [v]. *)

val count : t -> int -> int
(** [count t v] is the number of occurrences recorded for [v]. *)

val total : t -> int
(** Total number of occurrences across all values. *)

val max_value : t -> int
(** Largest value with a non-zero count; [-1] if the histogram is empty. *)

val mean : t -> float
(** Mean of the recorded values; [nan] if empty. *)

val to_alist : t -> (int * int) list
(** [(value, count)] pairs in increasing value order, zero counts
    omitted. *)

val render : ?width:int -> t -> string
(** [render t] draws one line per value with a proportional bar, e.g.
    ["  3 | ########          42"].  [width] bounds the bar length
    (default 40). *)
