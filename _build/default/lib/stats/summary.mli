(** Summary statistics over samples of floats.

    Every experiment in the harness repeats a measurement over several
    seeds and reports a summary of the resulting sample: mean, standard
    deviation, median, order statistics and a normal-approximation
    confidence interval.  The accumulator uses Welford's online algorithm
    so that a summary can be built incrementally without storing values
    (used by the multicore runner), while [of_array] additionally computes
    exact order statistics. *)

type acc
(** A mutable online accumulator (Welford).  Tracks count, mean, variance,
    min and max, but not order statistics. *)

val acc_create : unit -> acc
val acc_add : acc -> float -> unit
val acc_count : acc -> int
val acc_mean : acc -> float
val acc_variance : acc -> float
(** Unbiased sample variance; [0.] when fewer than two samples. *)

val acc_stddev : acc -> float
val acc_min : acc -> float
val acc_max : acc -> float

type t = {
  count : int;
  mean : float;
  stddev : float;  (** unbiased sample standard deviation *)
  min : float;
  max : float;
  median : float;
  p05 : float;  (** 5th percentile *)
  p95 : float;  (** 95th percentile *)
  ci95_low : float;  (** normal-approximation 95% CI for the mean *)
  ci95_high : float;
}
(** An immutable summary of a sample. *)

val of_array : float array -> t
(** [of_array xs] summarizes [xs].  @raise Invalid_argument on an empty
    array.  The input is not modified. *)

val of_int_array : int array -> t
(** [of_int_array xs] is [of_array] after conversion. *)

val percentile : float array -> float -> float
(** [percentile xs q] is the [q]-quantile of [xs] for [q] in [0,1], using
    linear interpolation between order statistics.  @raise
    Invalid_argument on an empty array or [q] outside [0,1]. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val pp : Format.formatter -> t -> unit
(** Renders a summary as ["mean=… sd=… med=… [min,max]"]. *)
