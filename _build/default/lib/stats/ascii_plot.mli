(** Terminal scatter/line plots for the experiment sweeps.

    The growth-rate tables are authoritative, but a picture of
    "ReBatching stays flat while uniform probing climbs" communicates the
    paper's headline instantly even over ssh.  Plots are pure text, so
    they also land verbatim in the captured experiment outputs. *)

type series = {
  label : string;
  marker : char;
  points : (float * float) array;  (** (x, y) pairs, any order *)
}

val render :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?title:string ->
  series list ->
  string
(** [render series] draws all series on one grid.

    - [width] (default 64) and [height] (default 16) are the plot-area
      character dimensions;
    - [log_x] (default false) uses a base-2 logarithmic x axis — the
      natural choice for the geometric size sweeps;
    - overlapping points show the marker of the later series;
    - y axis is labeled with min/mid/max, x axis with min/max; a legend
      line lists [marker = label] pairs.

    @raise Invalid_argument if no series has any point, or on
    non-positive dimensions, or if [log_x] is set and some x is [<= 0]. *)
