type series = { label : string; marker : char; points : (float * float) array }

let render ?(width = 64) ?(height = 16) ?(log_x = false) ?title series_list =
  if width < 2 || height < 2 then
    invalid_arg "Ascii_plot.render: dimensions must be >= 2";
  let all_points = List.concat_map (fun s -> Array.to_list s.points) series_list in
  if all_points = [] then invalid_arg "Ascii_plot.render: no data";
  if log_x && List.exists (fun (x, _) -> x <= 0.) all_points then
    invalid_arg "Ascii_plot.render: log_x requires positive x";
  let tx x = if log_x then log x /. log 2. else x in
  let xs = List.map (fun (x, _) -> tx x) all_points in
  let ys = List.map snd all_points in
  let x_min = List.fold_left Float.min infinity xs in
  let x_max = List.fold_left Float.max neg_infinity xs in
  let y_min = List.fold_left Float.min infinity ys in
  let y_max = List.fold_left Float.max neg_infinity ys in
  let x_span = if x_max > x_min then x_max -. x_min else 1. in
  let y_span = if y_max > y_min then y_max -. y_min else 1. in
  let grid = Array.make_matrix height width ' ' in
  let plot_point marker (x, y) =
    let cx =
      int_of_float (Float.round ((tx x -. x_min) /. x_span *. float_of_int (width - 1)))
    in
    let cy =
      int_of_float (Float.round ((y -. y_min) /. y_span *. float_of_int (height - 1)))
    in
    (* row 0 is the top of the plot *)
    grid.(height - 1 - cy).(cx) <- marker
  in
  List.iter (fun s -> Array.iter (plot_point s.marker) s.points) series_list;
  let buf = Buffer.create ((width + 12) * (height + 4)) in
  (match title with
  | Some t ->
    Buffer.add_string buf t;
    Buffer.add_char buf '\n'
  | None -> ());
  let y_label row =
    (* label top, middle and bottom rows *)
    if row = 0 then Printf.sprintf "%10.2f " y_max
    else if row = height - 1 then Printf.sprintf "%10.2f " y_min
    else if row = height / 2 then
      Printf.sprintf "%10.2f " (y_min +. (y_span /. 2.))
    else String.make 11 ' '
  in
  Array.iteri
    (fun row line ->
      Buffer.add_string buf (y_label row);
      Buffer.add_char buf '|';
      Array.iter (Buffer.add_char buf) line;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 11 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  let x_left, x_right =
    if log_x then (Printf.sprintf "2^%.1f" x_min, Printf.sprintf "2^%.1f" x_max)
    else (Printf.sprintf "%.2f" x_min, Printf.sprintf "%.2f" x_max)
  in
  let pad = max 1 (width - String.length x_left - String.length x_right) in
  Buffer.add_string buf (String.make 12 ' ');
  Buffer.add_string buf x_left;
  Buffer.add_string buf (String.make pad ' ');
  Buffer.add_string buf x_right;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "  legend: ";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf "   ";
      Buffer.add_char buf s.marker;
      Buffer.add_string buf " = ";
      Buffer.add_string buf s.label)
    series_list;
  Buffer.add_char buf '\n';
  Buffer.contents buf
