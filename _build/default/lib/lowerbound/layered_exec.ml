type family = Uniform | Fixed

type result = {
  layers : int;
  survivors_per_layer : int array;
  total_probes : int;
}

let run_with_types ~seed ~types ~s ?(max_layers = 10_000) () =
  let n = Array.length types in
  if n < 1 then invalid_arg "Layered_exec.run_with_types: no types";
  if s < 1 then invalid_arg "Layered_exec.run_with_types: s must be >= 1";
  Array.iter
    (Array.iter (fun target ->
         if target < 0 || target >= s then
           invalid_arg "Layered_exec.run_with_types: target out of range"))
    types;
  let rng = Prng.Splitmix.of_int seed in
  let survivors = ref (Array.init n (fun i -> i)) in
  let history = ref [ n ] in
  let probes = ref 0 in
  let layers = ref 0 in
  while Array.length !survivors > 0 && !layers < max_layers do
    let l = !layers in
    incr layers;
    let taken = Hashtbl.create (Array.length !survivors) in
    Prng.Shuffle.shuffle_in_place rng !survivors;
    let losers = ref [] in
    Array.iter
      (fun pid ->
        if l < Array.length types.(pid) then begin
          let target = types.(pid).(l) in
          incr probes;
          if Hashtbl.mem taken target then losers := pid :: !losers
          else Hashtbl.replace taken target ()
        end
        (* exhausted type: leaves without a name *))
      !survivors;
    survivors := Array.of_list !losers;
    history := Array.length !survivors :: !history
  done;
  {
    layers = !layers;
    survivors_per_layer = Array.of_list (List.rev !history);
    total_probes = !probes;
  }

let run ~seed ~n ~s ?(max_layers = 10_000) family =
  if n < 1 then invalid_arg "Layered_exec.run: n must be >= 1";
  if s < 1 then invalid_arg "Layered_exec.run: s must be >= 1";
  let rng = Prng.Splitmix.of_int seed in
  let survivors = ref (Array.init n (fun i -> i)) in
  let history = ref [ n ] in
  let probes = ref 0 in
  let layers = ref 0 in
  while Array.length !survivors > 0 && !layers < max_layers do
    incr layers;
    (* Fresh array T_l: locations taken this layer only. *)
    let taken = Hashtbl.create (Array.length !survivors) in
    (* The oblivious layered adversary: step survivors in a uniformly
       random order. *)
    Prng.Shuffle.shuffle_in_place rng !survivors;
    let losers = ref [] in
    Array.iter
      (fun pid ->
        let target =
          match family with
          | Uniform -> Prng.Splitmix.int rng s
          | Fixed -> pid mod s
        in
        incr probes;
        if Hashtbl.mem taken target then losers := pid :: !losers
        else Hashtbl.replace taken target ())
      !survivors;
    survivors := Array.of_list !losers;
    history := Array.length !survivors :: !history
  done;
  {
    layers = !layers;
    survivors_per_layer = Array.of_list (List.rev !history);
    total_probes = !probes;
  }
