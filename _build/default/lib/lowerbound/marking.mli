(** The layered adversarial execution with Poisson marking (paper §6).

    The lower-bound proof builds an oblivious layered schedule in which
    the number of process instances of each type is Poisson, and after
    each layer a subset of the processes that did not win their TAS keep
    their "mark", chosen through the {!Coupling} gadget so that per-type
    marked counts stay independent Poissons.  The marked processes are a
    lower bound on the processes still running, so the number of layers
    they survive lower-bounds the renaming time.

    This module simulates those dynamics directly:

    - [M = n^2] process types, each of initial rate [n/2M]; the realized
      instances are drawn as [N ~ Pois(n/2)] instances of distinct types
      (the proof's union bound discards duplicate-type executions, so we
      simulate the conditioned process).
    - Each layer assigns every type an independent uniformly random
      location among the [s] per-layer TAS objects — the probe behaviour
      of an arbitrary fixed type sequence after the Lemma 6.2/6.3
      reductions.
    - Per location, the realized marked count [z] and analytic rate
      [lambda_j] feed {!Coupling.sample_marked}; the retained marks are
      distributed among the types present by a uniformly random
      permutation (the multivariate hypergeometric of Lemma 6.4), and
      every rate at the location is scaled by [gamma_j / lambda_j].

    One deliberate aggregation: the [M - N] types with zero realized
    instances can never contribute marked processes again, so instead of
    instantiating [n^2] of them we carry their total rate mass and spread
    it uniformly over locations (its exact per-location fluctuation is
    [O(sqrt)] and only perturbs [lambda_j] smoothly).  This keeps a layer
    O(marked + active locations) so the experiment sweeps to large [n]. *)

type config = {
  n : int;  (** system size; initial total rate is [n/2] *)
  locations : int;
      (** TAS objects per layer — the proof's [s + m], both [O(n)] *)
  max_layers : int;  (** hard stop for the simulation *)
}

val default_config : n:int -> config
(** [locations = 4 * n] (i.e. [s = 2n] objects plus [m = 2n] name slots,
    matching the reduction that turns [return(j)] into a TAS on a second
    array), [max_layers = 64]. *)

type layer_stats = {
  layer : int;
  marked : int;  (** realized marked processes entering this layer *)
  rate : float;  (** analytic total marked rate [lambda^l] *)
  active_locations : int;
      (** locations holding at least one marked process this layer *)
}

type result = {
  series : layer_stats array;
      (** layer 0, 1, ... up to extinction or [max_layers] *)
  extinct_at : int option;
      (** first layer entered with zero marked processes *)
}

val run : seed:int -> config -> result
(** Simulate one execution.  Deterministic in [(seed, config)]. *)

val layers_survived : result -> int
(** Number of layers with at least one marked process — the empirical
    quantity that must grow as [Omega(log log n)] (Theorem 6.1). *)
