(** The coupling gadget of the lower bound (paper §6.2, Lemmas 6.4–6.5).

    For a TAS object accessed by [Z ~ Pois(lambda)] marked processes, the
    analysis marks the last [Y] accessors, where [Y ~ Pois(gamma)] with
    [gamma = min (lambda^2/4, lambda/4)], coupled so that
    [Y <= max (0, Z - 1)] {i always} — the winner of the TAS is never
    marked.  Lemma 6.5 makes this coupling possible by proving the CDF
    domination [P_lambda(n+1) <= P_gamma(n)] for all [n].

    We realize the coupling monotonically: draw [U ~ Unif[0,1)], set
    [Z = F_lambda^{-1}(U)] and [Y = F_gamma^{-1}(U)].  Lemma 6.5 is
    exactly the statement that this construction satisfies
    [Y <= max (0, Z-1)] pointwise.  When [Z] has already been realized (as
    in the layered simulation, where it is the actual number of marked
    accessors), we sample [Y] from its conditional law given [Z = z] by
    drawing [U] uniformly from the slice [(F_lambda(z-1), F_lambda(z)]]
    and applying [F_gamma^{-1}]. *)

val gamma_of : float -> float
(** [gamma_of lambda] is [min (lambda^2 / 4) (lambda / 4)].
    @raise Invalid_argument on negative [lambda]. *)

val lemma_6_5_holds : lambda:float -> n:int -> bool
(** [lemma_6_5_holds ~lambda ~n] checks the CDF inequality
    [P_lambda(n+1) <= P_(gamma_of lambda)(n)] at one point (up to
    floating-point slack 1e-12).  Experiment F1 sweeps this over a grid;
    the tests assert it. *)

val sample_marked : Prng.Splitmix.t -> lambda:float -> z:int -> int
(** [sample_marked rng ~lambda ~z] draws [Y] from the conditional law of
    the coupled [Y ~ Pois(gamma_of lambda)] given [Z = z].  Guarantees
    [0 <= Y <= max 0 (z-1)].
    @raise Invalid_argument if [lambda < 0] or [z < 0]. *)

val joint_sample : Prng.Splitmix.t -> lambda:float -> int * int
(** [joint_sample rng ~lambda] draws the coupled pair [(Z, Y)] directly
    from one uniform (used by the property tests to validate the
    construction end to end). *)
