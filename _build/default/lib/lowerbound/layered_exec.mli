(** The layered execution applied to concrete algorithm types (paper
    §6.1, after the Lemma 6.2/6.3 reductions).

    The reductions turn any renaming algorithm into one where (a) a
    process acquires a name exactly by winning a TAS, (b) a process stops
    as soon as it wins, and (c) the l-th TAS of every process targets a
    fresh array [T_l] of [s] objects.  A {i type} is then just the
    sequence of indices a process would probe, layer by layer, if it kept
    losing.

    This module executes that reduced game directly: in each layer, the
    still-running processes are stepped in a uniformly random order
    (the oblivious layered adversary); each performs one TAS on its
    layer-l target; winners leave.  The measured quantity — layers until
    everyone has won — is exactly the individual step complexity the
    lower bound talks about, with no Poisson machinery in sight, so it
    cross-checks the {!Marking} simulation.

    Two built-in type families:
    - [uniform]: each type probes an independent uniform location per
      layer (the behaviour an algorithm with no extra information can do
      no better than, per the Theorem 6.1 argument);
    - [fixed]: each type deterministically probes (its own id mod s) —
      a degenerate family showing what losing randomness costs. *)

type family =
  | Uniform  (** fresh uniform target per layer *)
  | Fixed  (** always probes [pid mod s] *)

type result = {
  layers : int;  (** layers until every process had won a TAS *)
  survivors_per_layer : int array;
      (** processes still unnamed entering each layer (index 0 = n) *)
  total_probes : int;
}

val run : seed:int -> n:int -> s:int -> ?max_layers:int -> family -> result
(** [run ~seed ~n ~s family] plays the layered game with [n] processes
    and [s] TAS objects per layer.  With [family = Uniform] and
    [s = O(n)], Theorem 6.1 says [layers] grows as [Omega(log log n)]
    with constant probability (and the ReBatching upper bound says
    [O(log log n)] suffices, so this measurement pins the constant).
    @raise Invalid_argument if [n < 1] or [s < 1].
    [max_layers] (default 10_000) guards non-termination for degenerate
    families. *)

val run_with_types :
  seed:int -> types:int array array -> s:int -> ?max_layers:int -> unit -> result
(** [run_with_types ~seed ~types ~s ()] plays the game with explicit
    types: process [pid]'s layer-[l] probe targets [types.(pid).(l)]
    (all targets must lie in [0, s)).  This is the Lemma 6.2/6.3
    reduction made executable: any algorithm whose probe sequence is a
    pure function of its coins — ReBatching literally is one — can be
    "compiled" to such a type by recording its probes under all-loss
    responses, and the reduced game lower-bounds the survivors of the
    real execution.  A process whose type runs out of probes is treated
    as leaving (it would have returned without a name).
    @raise Invalid_argument on an empty type array, [s < 1], or an
    out-of-range target. *)
