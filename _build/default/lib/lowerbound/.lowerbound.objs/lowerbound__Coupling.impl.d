lib/lowerbound/coupling.ml: Float Prng
