lib/lowerbound/marking.ml: Array Coupling Float Hashtbl List Prng
