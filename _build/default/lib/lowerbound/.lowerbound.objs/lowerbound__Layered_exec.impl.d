lib/lowerbound/layered_exec.ml: Array Hashtbl List Prng
