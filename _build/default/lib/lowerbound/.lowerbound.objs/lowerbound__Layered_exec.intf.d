lib/lowerbound/layered_exec.mli:
