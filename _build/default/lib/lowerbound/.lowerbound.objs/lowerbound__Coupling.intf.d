lib/lowerbound/coupling.mli: Prng
