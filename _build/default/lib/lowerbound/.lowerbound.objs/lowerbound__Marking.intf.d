lib/lowerbound/marking.mli:
