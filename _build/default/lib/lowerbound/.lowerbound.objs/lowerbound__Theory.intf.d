lib/lowerbound/theory.mli:
