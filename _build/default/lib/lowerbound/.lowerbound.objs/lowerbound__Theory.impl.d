lib/lowerbound/theory.ml: Array
