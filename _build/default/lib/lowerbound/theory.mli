(** Closed-form side of the lower bound (paper §6.2, Lemma 6.6 and the
    Final Argument).

    With [s + m] TAS objects per layer and total marked rate
    [lambda^l], Lemma 6.6 gives the recursion on the ratio
    [r^l = lambda^l / (s+m)]:

    [r^{l+1} >= (r^l)^2 / 4]  (when [lambda^l <= (s+m)/2]),

    which solves to [r^l >= 4 (r^0/4)^{2^l}]; choosing
    [l = lg lg (s+m) + lg lg (4/r^0)] keeps the expected number of marked
    processes at least 4 — i.e. survivors persist for [Omega(log log n)]
    layers.  This module evaluates those formulas so experiment F2 can
    print predicted-vs-simulated columns, and so tests can check the
    algebra. *)

val rate_recursion_lower_bound : s:int -> lambda:float -> float
(** [rate_recursion_lower_bound ~s ~lambda] is Lemma 6.6's lower bound on
    [lambda^{l+1}] given [lambda^l = lambda] with [s] TAS objects in the
    layer: [(lambda^2)/(4 s)] if [lambda <= s/2], else [lambda / 4]. *)

val ratio_series : r0:float -> layers:int -> float array
(** [ratio_series ~r0 ~layers] iterates [r -> r^2 / 4] from [r0],
    returning [layers + 1] values [r^0 .. r^layers] — the analytic
    lower-bound trajectory of the marked-process ratio. *)

val predicted_layers : n:int -> s:int -> m:int -> float
(** [predicted_layers ~n ~s ~m] is the Final Argument's layer count: the
    largest [l] with [4 (r0/4)^(2^l) >= 4/(s+m)] where
    [r0 = (n/2)/(s+m)], i.e.

    [l = log2 (log2 (s+m) / log2 (4/r0))].

    This is the number of layers after which the expected number of
    marked processes is still at least 4.  Note: the extended abstract
    prints this choice as [lg lg (s+m) + lg lg (4/r0)]; substituting that
    into [4 (r0/4)^(2^l)] does not reproduce the claimed [4/(s+m)] unless
    [r0 = 2], so we implement the value that actually satisfies the
    inequality chain (the asymptotics — [Omega(log log n)] for constant
    [r0] — are unchanged).  EXPERIMENTS.md records this as discrepancy
    D1.  @raise Invalid_argument unless [n, s, m >= 1] and [r0 < 1]. *)

val survival_probability_bound : unit -> float
(** The constant-probability bound assembled at the end of §6.2:
    [1 - 1/2 - 1/4 - e^{-4} ≈ 0.23168] — the probability with which the
    adversarial execution keeps some process past [Omega(log log n)]
    layers. *)
