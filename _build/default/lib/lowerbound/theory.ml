let rate_recursion_lower_bound ~s ~lambda =
  if s < 1 then invalid_arg "Theory.rate_recursion_lower_bound: s must be >= 1";
  if lambda < 0. then
    invalid_arg "Theory.rate_recursion_lower_bound: negative rate";
  if lambda <= float_of_int s /. 2. then lambda *. lambda /. (4. *. float_of_int s)
  else lambda /. 4.

let ratio_series ~r0 ~layers =
  if layers < 0 then invalid_arg "Theory.ratio_series: negative layer count";
  let out = Array.make (layers + 1) r0 in
  for l = 1 to layers do
    out.(l) <- out.(l - 1) *. out.(l - 1) /. 4.
  done;
  out

let log2 x = log x /. log 2.

let predicted_layers ~n ~s ~m =
  if n < 1 || s < 1 || m < 1 then
    invalid_arg "Theory.predicted_layers: sizes must be >= 1";
  let total = float_of_int (s + m) in
  let r0 = float_of_int n /. 2. /. total in
  if r0 >= 1. then invalid_arg "Theory.predicted_layers: r0 must be < 1";
  (* largest l with 2^l * log2 (4/r0) <= log2 (s+m) *)
  log2 (log2 total /. log2 (4. /. r0))

let survival_probability_bound () = 1. -. 0.5 -. 0.25 -. exp (-4.)
