let gamma_of lambda =
  if lambda < 0. then invalid_arg "Coupling.gamma_of: negative rate";
  Float.min (lambda *. lambda /. 4.) (lambda /. 4.)

let lemma_6_5_holds ~lambda ~n =
  let gamma = gamma_of lambda in
  Prng.Dist.poisson_cdf ~lambda (n + 1)
  <= Prng.Dist.poisson_cdf ~lambda:gamma n +. 1e-12

let sample_marked rng ~lambda ~z =
  if lambda < 0. then invalid_arg "Coupling.sample_marked: negative rate";
  if z < 0 then invalid_arg "Coupling.sample_marked: negative count";
  if z <= 1 then 0
  else begin
    let gamma = gamma_of lambda in
    (* U conditionally uniform on (F_lambda(z-1), F_lambda(z)] given
       Z = z. *)
    let lo = Prng.Dist.poisson_cdf ~lambda (z - 1) in
    let hi = Prng.Dist.poisson_cdf ~lambda z in
    let u = lo +. ((hi -. lo) *. Prng.Splitmix.float rng) in
    (* Guard against u hitting exactly 1 through rounding. *)
    let u = Float.min u (1. -. 1e-15) in
    let y = Prng.Dist.poisson_quantile ~lambda:gamma u in
    (* Lemma 6.5 guarantees y <= z - 1; clamp defensively against
       floating-point edge cases so the invariant is unconditional. *)
    min y (z - 1)
  end

let joint_sample rng ~lambda =
  let gamma = gamma_of lambda in
  let u = Prng.Splitmix.float rng in
  let z = Prng.Dist.poisson_quantile ~lambda u in
  let y = Prng.Dist.poisson_quantile ~lambda:gamma u in
  (z, min y (max 0 (z - 1)))
