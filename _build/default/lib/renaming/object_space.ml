let max_index = 60

type t = {
  epsilon : float;
  t0 : int option;
  beta : int;
  cap : int;
  (* memo tables indexed by object index; slot 0 unused *)
  objects : Rebatching.t option array;
  offsets : int array;  (* s_i; offsets.(i) valid once computed_up_to >= i *)
  mutable computed_up_to : int;
}

let create ?(epsilon = 1.0) ?t0 ?(beta = Rebatching.default_beta)
    ?(cap = max_index) () =
  if epsilon <= 0. then invalid_arg "Object_space.create: epsilon must be > 0";
  if cap < 1 || cap > max_index then
    invalid_arg "Object_space.create: cap outside [1, max_index]";
  {
    epsilon;
    t0;
    beta;
    cap;
    objects = Array.make (max_index + 2) None;
    offsets = Array.make (max_index + 2) 0;
    computed_up_to = 0;
  }

let m_of t i =
  int_of_float (Float.ceil ((1. +. t.epsilon) *. float_of_int (1 lsl i)))

(* Ensure offsets s_1 .. s_{i+1} are filled in. *)
let ensure_offsets t i =
  if t.computed_up_to < i then begin
    for j = max 1 t.computed_up_to to i do
      t.offsets.(j + 1) <- t.offsets.(j) + m_of t j
    done;
    t.computed_up_to <- i
  end

let cap t = t.cap

let check_index t i =
  if i < 1 || i > t.cap then
    invalid_arg "Object_space: object index out of range"

let offset t i =
  check_index t i;
  ensure_offsets t i;
  t.offsets.(i)

let obj t i =
  check_index t i;
  match t.objects.(i) with
  | Some r -> r
  | None ->
    let r =
      Rebatching.make ~epsilon:t.epsilon ?t0:t.t0 ~beta:t.beta
        ~base:(offset t i) ~obj:i ~n:(1 lsl i) ()
    in
    t.objects.(i) <- Some r;
    r

let total_size t i =
  check_index t i;
  ensure_offsets t i;
  t.offsets.(i + 1)

let in_object t i ~name =
  check_index t i;
  let s = offset t i in
  name >= s && name < s + m_of t i

let owner_of_name t u =
  if u < 0 then None
  else begin
    let rec find i =
      if i > t.cap then None
      else if in_object t i ~name:u then Some i
      else find (i + 1)
    in
    find 1
  end
