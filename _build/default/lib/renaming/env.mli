(** The execution environment seen by a renaming algorithm.

    This record is the entire interface between the algorithms and the
    world, which is what lets one implementation of each algorithm run
    unchanged on the deterministic simulator ([Sim]), on real multicore
    atomics ([Shm]), and in unit tests with hand-built fakes.

    The cost model of the paper (§2) is: one step = one shared-memory
    operation.  Accordingly [tas] is the only effectful operation an
    algorithm may perform; everything else is local computation. *)

type t = {
  pid : int;
      (** The process identifier (initial name); only used for
          diagnostics, never for symmetry breaking — the algorithms are
          comparison-free and anonymous as in the paper. *)
  tas : int -> bool;
      (** [tas loc] performs test-and-set on global location [loc];
          [true] means the caller won (it changed the location from free
          to taken).  At most one caller ever wins a given location. *)
  reset : int -> unit;
      (** [reset loc] releases a taken location — used only by long-lived
          renaming ({!Long_lived}); the one-shot algorithms never call
          it.  Environments that do not support release raise
          [Invalid_argument]. *)
  random_int : int -> int;
      (** [random_int bound] is a process-local uniform draw on
          [0, bound).  Backed by a per-process SplitMix64 stream. *)
  emit : Events.t -> unit;  (** Instrumentation sink; may be [ignore]. *)
}

val make :
  ?emit:(Events.t -> unit) ->
  ?reset:(int -> unit) ->
  pid:int ->
  tas:(int -> bool) ->
  random_int:(int -> int) ->
  unit ->
  t
(** [make ~pid ~tas ~random_int ()] builds an environment; [emit]
    defaults to dropping events and [reset] to raising
    [Invalid_argument]. *)
