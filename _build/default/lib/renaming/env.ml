type t = {
  pid : int;
  tas : int -> bool;
  reset : int -> unit;
  random_int : int -> int;
  emit : Events.t -> unit;
}

let no_reset (_ : int) =
  invalid_arg "Env.reset: this environment does not support release"

let make ?(emit = fun (_ : Events.t) -> ()) ?(reset = no_reset) ~pid ~tas
    ~random_int () =
  { pid; tas; reset; random_int; emit }
