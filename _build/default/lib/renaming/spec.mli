(** Executable specification: validate an instrumentation event stream
    against the shared-memory semantics and the algorithms' structural
    invariants.

    The algorithms report everything they do through {!Events}; this
    checker replays the stream against a reference model of the memory
    and flags any inconsistency:

    - a location is won by at most one probe while held (wins may recur
      only after a matching release);
    - a losing probe must target a location the model believes taken;
    - [Name_acquired] must name the location of that process's most
      recent winning probe, and a name is never acquired while held;
    - [Name_released] must release a held name;
    - with geometry attached ({!with_rebatching} / {!with_object_space}),
      every probe must target a location inside the batch it claims, and
      batch indices must be within range.

    Violations are collected, not raised, so a test can assert
    [violations spec = []] and print all failures at once.

    The checker assumes events arrive in execution order, which holds for
    every simulator run (single-threaded); multicore event streams are
    per-domain buffers without a global order and are out of scope. *)

type t

val create : unit -> t
(** A checker with memory semantics only (no geometry). *)

val with_rebatching : t -> Rebatching.t -> unit
(** Attach a ReBatching instance: probes reporting this instance's object
    index are checked against its batch layout. *)

val with_object_space : t -> Object_space.t -> unit
(** Attach an object space: probes reporting object [i >= 1] are checked
    against [R_i]'s layout. *)

val observe : t -> pid:int -> Events.t -> unit
(** Feed one event.  Designed to be partially applied as the [on_event]
    callback of {!Sim.Runner.run}. *)

val violations : t -> string list
(** All violations so far, oldest first; empty means the stream is
    consistent. *)

val events_seen : t -> int
