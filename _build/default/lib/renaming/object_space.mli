(** The unbounded collection [R_1, R_2, ...] of ReBatching objects shared
    by the adaptive algorithms (paper §5).

    Object [R_i] is a ReBatching instance for [n_i = 2^i] processes, hence
    with namespace size [m_i = ceil ((1+eps) 2^i)], laid out at the fixed
    global offset [s_i = sum_{j<i} m_j].  Because the layout is a pure
    function of the parameters, every process (and every substrate) can
    compute it independently — no shared allocation step is needed, which
    keeps the step-complexity accounting honest.

    Instances are memoized, so [obj space i] is cheap after first use. *)

type t

val create : ?epsilon:float -> ?t0:int -> ?beta:int -> ?cap:int -> unit -> t
(** [create ()] describes a fresh collection.  Defaults: [epsilon = 1.0]
    (the Fast variant of §5.2 requires exactly this), [beta =
    Rebatching.default_beta], [t0] per the paper's formula.  The
    parameters apply to every [R_i].

    [cap] (default {!max_index}) bounds the largest object index — the
    §5 remark that when [n] is known, the first [2^(ceil(log n)+1)] TAS
    objects suffice and total space is O(n).  With a cap, the adaptive
    algorithms report failure instead of growing past [R_cap].
    @raise Invalid_argument if [cap] is outside [1, max_index]. *)

val cap : t -> int
(** The largest usable object index of this collection. *)

val obj : t -> int -> Rebatching.t
(** [obj space i] is [R_i], for [i >= 1].  @raise Invalid_argument if
    [i < 1] or [i > 60]. *)

val offset : t -> int -> int
(** [offset space i] is [s_i], the first global location of [R_i]. *)

val total_size : t -> int -> int
(** [total_size space i] is [s_{i+1}], the number of global locations
    used by [R_1 .. R_i] — the space bound to check against the paper's
    [O(n)] claim when [i = ceil (log2 n) + 1]. *)

val owner_of_name : t -> int -> int option
(** [owner_of_name space u] is the index [i] with [u] in [R_i]'s
    namespace, if any.  Names below [offset space 1] have no owner. *)

val in_object : t -> int -> name:int -> bool
(** [in_object space i ~name] is the "[name ∈ R_i]" test of Figure 2. *)

val max_index : int
(** Largest supported object index (60; [2^60] processes is beyond any
    conceivable run, and keeps offsets inside OCaml's [int]). *)
