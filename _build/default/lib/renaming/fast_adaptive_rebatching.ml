(* Direct transcription of Figure 2.  [try_get_name env space a t] is
   [R_a.TryGetName(t)]; [kappa space a] is the paper's kappa(a), the
   largest batch index of R_a. *)

let try_get_name (env : Env.t) space a t =
  let r = Object_space.obj space a in
  if t > Rebatching.kappa r then None else Rebatching.try_batch env r t

let kappa space a = Rebatching.kappa (Object_space.obj space a)

(* Search(a, b, u, t) of Figure 2.  Preconditions: a < b, [u] is a name
   the process holds from R_b, and it has already executed
   R_a.TryGetName(j) for j = 0 .. t-1.  [drop] (long-lived mode only)
   releases the currently held name when a smaller one supersedes it. *)
let rec search (env : Env.t) space ~drop ~a ~b ~u ~t =
  if t > kappa space a then u
  else
    match try_get_name env space a t with
    | Some u' ->
      (match drop with None -> () | Some f -> f u);
      u'
    | None ->
      let d = (a + b + 1) / 2 in
      (* ceil ((a+b)/2) *)
      let u = if d < b then search env space ~drop ~a:d ~b ~u ~t:0 else u in
      if Object_space.in_object space d ~name:u then
        search env space ~drop ~a ~b:d ~u ~t:(t + 1)
      else u

let get_name_with ~drop (env : Env.t) space =
  let r1 = Object_space.obj space 1 in
  if Rebatching.epsilon r1 <> 1.0 then
    invalid_arg "Fast_adaptive_rebatching: object space must use epsilon = 1";
  (* Lines 1-5: race up the powers of two with single TryGetName(0)
     calls. *)
  let rec race l =
    let i = 1 lsl l in
    if i > Object_space.cap space then None
    else begin
      env.emit (Events.Object_visited { obj = i });
      match try_get_name env space i 0 with
      | Some u -> Some (l, u)
      | None -> race (l + 1)
    end
  in
  match race 0 with
  | None -> None
  | Some (l, u) ->
    (* Lines 6-9: repeatedly Search the left half while the current name
       still comes from the current upper-bound object. *)
    let rec crunch l u =
      if l >= 1 && Object_space.in_object space (1 lsl l) ~name:u then begin
        let u = search env space ~drop ~a:(1 lsl (l - 1)) ~b:(1 lsl l) ~u ~t:1 in
        crunch (l - 1) u
      end
      else u
    in
    Some (crunch l u)

let get_name (env : Env.t) space = get_name_with ~drop:None env space

let get_name_releasing (env : Env.t) space =
  let drop name =
    env.reset name;
    let obj = Option.value ~default:0 (Object_space.owner_of_name space name) in
    env.emit (Events.Name_released { obj; name })
  in
  get_name_with ~drop:(Some drop) env space
