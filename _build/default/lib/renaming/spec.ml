type t = {
  taken : (int, int) Hashtbl.t;  (* location -> winner pid *)
  held : (int, int) Hashtbl.t;  (* acquired name -> holder pid *)
  last_win : (int, int) Hashtbl.t;  (* pid -> location of last winning probe *)
  mutable rebatching : Rebatching.t option;
  mutable space : Object_space.t option;
  mutable violations : string list;  (* newest first *)
  mutable events_seen : int;
}

let create () =
  {
    taken = Hashtbl.create 256;
    held = Hashtbl.create 256;
    last_win = Hashtbl.create 64;
    rebatching = None;
    space = None;
    violations = [];
    events_seen = 0;
  }

let with_rebatching t instance = t.rebatching <- Some instance
let with_object_space t space = t.space <- Some space

let report t fmt =
  Printf.ksprintf (fun s -> t.violations <- s :: t.violations) fmt

(* Find the geometry for the object an event claims, if we have one. *)
let geometry_of t obj =
  match (obj, t.rebatching, t.space) with
  | 0, Some r, _ -> Some r
  | i, _, Some space when i >= 1 && i <= Object_space.max_index ->
    Some (Object_space.obj space i)
  | _ -> None

let check_probe_geometry t ~pid ~obj ~batch ~location =
  match geometry_of t obj with
  | None -> ()
  | Some r ->
    if batch = -1 then begin
      (* backup scan: anywhere inside the instance *)
      if not (Rebatching.owns_name r location) then
        report t "pid %d: backup probe at %d outside object %d" pid location obj
    end
    else if batch < 0 || batch > Rebatching.kappa r then
      report t "pid %d: probe claims invalid batch %d of object %d" pid batch obj
    else begin
      let off = Rebatching.batch_offset r batch in
      let size = Rebatching.batch_size r batch in
      if location < off || location >= off + size then
        report t "pid %d: probe at %d outside batch %d of object %d (=[%d,%d))"
          pid location batch obj off (off + size)
    end

let observe t ~pid event =
  t.events_seen <- t.events_seen + 1;
  match event with
  | Events.Probe { obj; batch; location; won } ->
    check_probe_geometry t ~pid ~obj ~batch ~location;
    if won then begin
      (match Hashtbl.find_opt t.taken location with
      | Some owner ->
        report t "pid %d: won location %d already taken by pid %d" pid location
          owner
      | None -> ());
      Hashtbl.replace t.taken location pid;
      Hashtbl.replace t.last_win pid location
    end
    else if not (Hashtbl.mem t.taken location) then
      report t "pid %d: lost a probe at free location %d" pid location
  | Events.Name_acquired { name; obj = _ } -> begin
    (match Hashtbl.find_opt t.last_win pid with
    | Some loc when loc = name -> ()
    | Some loc ->
      report t "pid %d: acquired name %d but last win was at %d" pid name loc
    | None -> report t "pid %d: acquired name %d without winning a probe" pid name);
    match Hashtbl.find_opt t.held name with
    | Some holder ->
      report t "pid %d: acquired name %d still held by pid %d" pid name holder
    | None -> Hashtbl.replace t.held name pid
  end
  | Events.Name_released { name; obj = _ } -> begin
    match Hashtbl.find_opt t.held name with
    | Some holder ->
      if holder <> pid then
        report t "pid %d: released name %d held by pid %d" pid name holder;
      Hashtbl.remove t.held name;
      Hashtbl.remove t.taken name
    | None -> report t "pid %d: released name %d that nobody holds" pid name
  end
  | Events.Batch_failed { obj; batch } -> begin
    match geometry_of t obj with
    | Some r when batch < 0 || batch > Rebatching.kappa r ->
      report t "pid %d: failed an invalid batch %d of object %d" pid batch obj
    | Some _ | None -> ()
  end
  | Events.Backup_entered _ | Events.Object_visited _ -> ()

let violations t = List.rev t.violations
let events_seen t = t.events_seen
