let rebatch_get_name (env : Env.t) space i =
  env.emit (Events.Object_visited { obj = i });
  Rebatching.get_name ~backup:false env (Object_space.obj space i)

(* Race phase: find the first l with R_{2^l}.GetName successful.  Returns
   [(l, name)]. *)
let race (env : Env.t) space =
  let rec go l =
    let i = 1 lsl l in
    if i > Object_space.cap space then None
    else
      match rebatch_get_name env space i with
      | Some u -> Some (l, u)
      | None -> go (l + 1)
  in
  go 0

(* Crunch phase: binary search on object indices a..b, where the process
   already holds [name] from R_b.  Invariant: the process has a name from
   R_b; a successful GetName on the midpoint lowers b, a failure raises
   a.  When [drop] is provided, a superseded name is returned to the pool
   (one reset step) — the long-lived mode; one-shot executions leave
   superseded names taken, as in the paper. *)
let crunch (env : Env.t) space ~drop ~a ~b ~name =
  let supersede old_name =
    match drop with None -> () | Some f -> f old_name
  in
  let rec go a b name =
    if a >= b then name
    else begin
      let d = (a + b) / 2 in
      match rebatch_get_name env space d with
      | Some u ->
        supersede name;
        go a d u
      | None -> go (d + 1) b name
    end
  in
  go a b name

let get_name_with ~drop (env : Env.t) space =
  match race env space with
  | None -> None
  | Some (0, u) -> Some u (* name from R_1: nothing below to search *)
  | Some (l, u) ->
    let a = (1 lsl (l - 1)) + 1 and b = 1 lsl l in
    Some (crunch env space ~drop ~a ~b ~name:u)

let get_name (env : Env.t) space = get_name_with ~drop:None env space

let get_name_releasing (env : Env.t) space =
  let drop name =
    env.reset name;
    let obj = Option.value ~default:0 (Object_space.owner_of_name space name) in
    env.emit (Events.Name_released { obj; name })
  in
  get_name_with ~drop:(Some drop) env space
