(** The FastAdaptiveReBatching algorithm (paper §5.2, Figure 2).

    Same guarantees as {!Adaptive_rebatching} on the largest name
    ([O(k)] w.h.p.) but with *total* step complexity [O(k log log k)]
    w.h.p. (Theorem 5.2) instead of [Theta(k (log log k)^2)].

    The trick: instead of running a full [GetName] (all batches,
    [Theta(log log n_i)] probes) on every object it visits, a process
    spends only a constant number of probes per visit — one
    [TryGetName(t)] call, i.e. one batch — and threads the batch counter
    [t] through a recursive binary search ([Search] in Figure 2).  An
    object may therefore be revisited with an incremented [t]; the
    recursion bookkeeping guarantees that whenever the process finally
    settles on a name from [R_i] with [i] above its lower bound, it has
    already failed on all batches of [R_{i-1}], certifying [Omega(n_i)]
    contention.

    Requires the object space to use [epsilon = 1] (as in the paper; the
    namespace of [R_i] then has size exactly [2^{i+1}]). *)

val get_name : Env.t -> Object_space.t -> int option
(** [get_name env space] returns this process's name ([None] only beyond
    the space's cap).  @raise Invalid_argument if [space] was not created
    with [epsilon = 1.0].  Superseded intermediate names stay taken, as
    in the paper. *)

val get_name_releasing : Env.t -> Object_space.t -> int option
(** Like {!get_name} but superseded names are reset — the long-lived
    mode; needs an environment with reset support. *)
