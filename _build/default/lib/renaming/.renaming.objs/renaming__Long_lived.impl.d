lib/renaming/long_lived.ml: Adaptive_rebatching Env Events Fast_adaptive_rebatching Object_space Rebatching
