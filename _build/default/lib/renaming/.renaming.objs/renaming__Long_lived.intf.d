lib/renaming/long_lived.mli: Env Object_space Rebatching
