lib/renaming/object_space.ml: Array Float Rebatching
