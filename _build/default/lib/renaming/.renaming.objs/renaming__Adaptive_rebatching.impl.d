lib/renaming/adaptive_rebatching.ml: Env Events Object_space Option Rebatching
