lib/renaming/rebatching.ml: Array Env Events Float
