lib/renaming/spec.ml: Events Hashtbl List Object_space Printf Rebatching
