lib/renaming/rebatching.mli: Env
