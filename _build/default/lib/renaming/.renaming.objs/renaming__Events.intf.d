lib/renaming/events.mli: Format
