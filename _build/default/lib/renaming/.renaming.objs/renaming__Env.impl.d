lib/renaming/env.ml: Events
