lib/renaming/fast_adaptive_rebatching.mli: Env Object_space
