lib/renaming/object_space.mli: Rebatching
