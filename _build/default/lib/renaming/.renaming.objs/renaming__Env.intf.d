lib/renaming/env.mli: Events
