lib/renaming/adaptive_rebatching.mli: Env Object_space
