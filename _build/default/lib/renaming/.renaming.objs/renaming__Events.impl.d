lib/renaming/events.ml: Format
