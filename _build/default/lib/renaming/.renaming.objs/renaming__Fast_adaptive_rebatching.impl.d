lib/renaming/fast_adaptive_rebatching.ml: Env Events Object_space Option Rebatching
