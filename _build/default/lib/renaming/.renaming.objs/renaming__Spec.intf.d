lib/renaming/spec.mli: Events Object_space Rebatching
