type t =
  | Probe of { obj : int; batch : int; location : int; won : bool }
  | Batch_failed of { obj : int; batch : int }
  | Backup_entered of { obj : int }
  | Name_acquired of { obj : int; name : int }
  | Name_released of { obj : int; name : int }
  | Object_visited of { obj : int }

let pp ppf = function
  | Probe { obj; batch; location; won } ->
    Format.fprintf ppf "probe(obj=%d batch=%d loc=%d %s)" obj batch location
      (if won then "win" else "lose")
  | Batch_failed { obj; batch } ->
    Format.fprintf ppf "batch_failed(obj=%d batch=%d)" obj batch
  | Backup_entered { obj } -> Format.fprintf ppf "backup_entered(obj=%d)" obj
  | Name_acquired { obj; name } ->
    Format.fprintf ppf "name_acquired(obj=%d name=%d)" obj name
  | Name_released { obj; name } ->
    Format.fprintf ppf "name_released(obj=%d name=%d)" obj name
  | Object_visited { obj } -> Format.fprintf ppf "object_visited(obj=%d)" obj
