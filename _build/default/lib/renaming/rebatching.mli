(** The ReBatching algorithm (paper §4, Figure 1).

    ReBatching solves non-adaptive loose renaming for [n] processes into a
    namespace of size [m = ceil ((1+eps) n)] built from [m] test-and-set
    objects, with individual step complexity [log log n + O(1)] w.h.p.
    against a strong adaptive adversary (Theorem 4.1).

    The [m] TAS objects are split into batches [B_0 .. B_kappa] with
    [kappa = ceil (log log n)], [|B_0| = ceil (eps n)] and
    [|B_i| = ceil (n / 2^i)].  A process probes [t_i] uniformly random
    objects in each batch in order ([t_0 = ceil (17 ln (8e/eps) / eps)],
    [t_i = 1] in the middle, [t_kappa = beta]), keeping the first name it
    wins; a process that fails everywhere falls back to a sequential scan
    of all [m] objects (executed with probability [<= 1/n^(beta-o(1))]).

    An instance is a pure description (geometry + probe schedule); all
    shared state lives behind {!Env.t.tas}.  The same instance value can
    therefore be shared by any number of processes on any substrate.

    For the adaptive algorithms (§5) an instance can be relocated to a
    [base] offset in the global location space and restricted to
    per-batch probing ({!try_batch}) with the backup phase disabled. *)

type t
(** An immutable ReBatching instance description. *)

val default_beta : int
(** Default number of probes on the last batch ([beta = 3], the smallest
    value for which Theorem 4.1 gives O(n) expected total steps). *)

val t0_formula : float -> int
(** [t0_formula eps] is the paper's probe budget for batch 0:
    [ceil (17 ln (8e/eps) / eps)].  @raise Invalid_argument if
    [eps <= 0]. *)

val make :
  ?epsilon:float ->
  ?t0:int ->
  ?beta:int ->
  ?base:int ->
  ?obj:int ->
  n:int ->
  unit ->
  t
(** [make ~n ()] builds an instance for up to [n] processes ([n >= 1]).

    - [epsilon] (default [1.0]): namespace slack; [m = ceil ((1+eps) n)].
    - [t0]: override the batch-0 probe budget (the paper's constant
      [t0_formula eps] is large; experiments T10 ablate it).  Default is
      the paper's formula.
    - [beta] (default {!default_beta}): probes on the last batch.
    - [base] (default 0): global location index of this instance's first
      TAS object; names are global, i.e. in [base, base + m).
    - [obj] (default 0): object index reported in instrumentation events.

    @raise Invalid_argument if [n < 1], [epsilon <= 0], [t0 < 1] or
    [beta < 1]. *)

val n : t -> int
val epsilon : t -> float
val base : t -> int

val size : t -> int
(** [size t] is [m], the number of TAS objects = namespace size. *)

val kappa : t -> int
(** Index of the last batch. *)

val batch_count : t -> int
(** [kappa t + 1]. *)

val batch_size : t -> int -> int
(** [batch_size t i] is [|B_i|].  @raise Invalid_argument if [i] is not in
    [0, kappa]. *)

val batch_offset : t -> int -> int
(** [batch_offset t i] is the global location index of the first object of
    [B_i]. *)

val probe_budget : t -> int -> int
(** [probe_budget t i] is [t_i], the number of probes a process performs
    on batch [i]. *)

val owns_name : t -> int -> bool
(** [owns_name t u] tests whether global name [u] lies in this instance's
    namespace [base, base + m) — the "[u ∈ R_i]" test of §5. *)

val try_batch : Env.t -> t -> int -> int option
(** [try_batch env t i] is [TryGetName(i)] of Figure 1: perform
    [probe_budget t i] TAS probes on uniformly random objects of batch
    [i], returning the (global) name of the first one won, or [None].
    @raise Invalid_argument if [i] is outside [0, kappa]. *)

val get_name : ?backup:bool -> Env.t -> t -> int option
(** [get_name env t] is [GetName()] of Figure 1: try batches
    [0 .. kappa] in order, then — if [backup] (default [true]) — scan all
    [m] objects sequentially.  Returns [None] only if every object is
    already taken (impossible when at most [n] processes participate and
    backup is enabled, hence Figure 1's unreachable [return -1]).

    The adaptive algorithms of §5 call this with [~backup:false], where
    [None] means "this object is too contended, move on". *)
