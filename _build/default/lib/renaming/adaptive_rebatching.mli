(** The AdaptiveReBatching algorithm (paper §5.1).

    Adaptive loose renaming: without knowing the contention [k] (nor even
    [n]), every process obtains a name of value [O(k)] within
    [O((log log k)^2)] steps, both w.h.p. (Theorem 5.1).

    The algorithm runs over the shared collection {!Object_space.t} of
    ReBatching objects [R_1, R_2, ...] ([R_i] sized for [2^i] processes),
    with the backup phase disabled so that [GetName] on an over-contended
    object simply fails.  A process
    + races up: calls [R_{2^l}.GetName] for [l = 0, 1, 2, ...] until it
      first wins a name, from [R_{2^{l*}}]; then
    + crunches down: binary-searches the index range
      [2^{l*-1}+1 .. 2^{l*}] for the smallest object that still yields it
      a name, updating its name on every successful probe.

    The name finally returned comes from an object [R_i] with
    [n_i <= 2^{ceil(log k)}] w.h.p., hence is at most [4(1+eps)k]. *)

val get_name : Env.t -> Object_space.t -> int option
(** [get_name env space] returns this process's name, or [None] in the
    (probability-zero under the model's assumptions, but reachable if the
    caller exceeds the space's cap) event that every object up to the cap
    is exhausted.  As in the paper, names acquired and then superseded
    during the binary search stay taken — harmless for one-shot renaming
    (the O(k) bound already accounts for them). *)

val get_name_releasing : Env.t -> Object_space.t -> int option
(** Like {!get_name} but superseded intermediate names are reset (one
    shared-memory step each) instead of abandoned.  Required for
    long-lived use ({!Long_lived.Adaptive}), where abandoned names would
    leak the namespace across epochs; needs an environment with reset
    support. *)
