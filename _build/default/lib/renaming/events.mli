(** Instrumentation events emitted by the renaming algorithms.

    The algorithms are substrate-independent; they report what happened
    through {!Env.t.emit} and the substrate decides what to do with it
    (the simulator records per-batch failure counts for the Lemma 4.2
    experiment, the multicore runner buffers events per domain, tests
    assert on them, and the default sink drops them).

    Object indices: the non-adaptive ReBatching instance reports
    [obj = 0]; the adaptive algorithms report the index [i >= 1] of the
    [R_i] object the event occurred in. *)

type t =
  | Probe of { obj : int; batch : int; location : int; won : bool }
      (** One TAS operation: [location] is the global location index. *)
  | Batch_failed of { obj : int; batch : int }
      (** A [TryGetName] call exhausted its probe budget on this batch. *)
  | Backup_entered of { obj : int }
      (** The process fell through all batches and entered the sequential
          backup scan (non-adaptive ReBatching only). *)
  | Name_acquired of { obj : int; name : int }
      (** The process won a TAS; [name] is the global name. *)
  | Name_released of { obj : int; name : int }
      (** Long-lived renaming: the process returned [name] to the pool. *)
  | Object_visited of { obj : int }
      (** An adaptive algorithm started probing object [R_obj]. *)

val pp : Format.formatter -> t -> unit
