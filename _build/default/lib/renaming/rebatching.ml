type t = {
  n : int;
  epsilon : float;
  base : int;
  obj : int;
  m : int;
  kappa : int;
  batch_sizes : int array;  (* length kappa + 1 *)
  batch_offsets : int array;  (* global location indices *)
  probes : int array;  (* t_i per batch *)
}

let default_beta = 3

let t0_formula eps =
  if eps <= 0. then invalid_arg "Rebatching.t0_formula: epsilon must be > 0";
  int_of_float (Float.ceil (17. *. log (8. *. Float.exp 1. /. eps) /. eps))

(* ceil (log2 x) for x >= 1 *)
let ceil_log2 x =
  let rec go acc p = if p >= x then acc else go (acc + 1) (2 * p) in
  go 0 1

let n t = t.n
let epsilon t = t.epsilon
let base t = t.base
let size t = t.m
let kappa t = t.kappa
let batch_count t = t.kappa + 1

let check_batch t i =
  if i < 0 || i > t.kappa then invalid_arg "Rebatching: batch index out of range"

let batch_size t i =
  check_batch t i;
  t.batch_sizes.(i)

let batch_offset t i =
  check_batch t i;
  t.batch_offsets.(i)

let probe_budget t i =
  check_batch t i;
  t.probes.(i)

let owns_name t u = u >= t.base && u < t.base + t.m

let make ?(epsilon = 1.0) ?t0 ?(beta = default_beta) ?(base = 0) ?(obj = 0)
    ~n () =
  if n < 1 then invalid_arg "Rebatching.make: n must be >= 1";
  if epsilon <= 0. then invalid_arg "Rebatching.make: epsilon must be > 0";
  if beta < 1 then invalid_arg "Rebatching.make: beta must be >= 1";
  let t0 =
    match t0 with
    | None -> t0_formula epsilon
    | Some v ->
      if v < 1 then invalid_arg "Rebatching.make: t0 must be >= 1";
      v
  in
  let m = int_of_float (Float.ceil ((1. +. epsilon) *. float_of_int n)) in
  (* kappa = ceil (log2 (log2 n)); 0 for n < 3 so tiny instances have a
     single batch. *)
  let kappa = if n < 3 then 0 else ceil_log2 (ceil_log2 n) in
  (* Batch sizes per Eq. (1), truncated so the batches fit inside m: the
     paper assumes n large enough that truncation never triggers; for small
     n we clamp so the instance stays well-formed.  Trailing batches that
     would be empty are dropped by shrinking kappa. *)
  let sizes = Array.make (kappa + 1) 0 in
  let remaining = ref m in
  let last_nonempty = ref (-1) in
  for i = 0 to kappa do
    let want =
      if i = 0 then
        max 1 (int_of_float (Float.ceil (epsilon *. float_of_int n)))
      else (n + (1 lsl i) - 1) / (1 lsl i)
    in
    let got = min want !remaining in
    sizes.(i) <- got;
    remaining := !remaining - got;
    if got > 0 then last_nonempty := i
  done;
  let kappa = max 0 !last_nonempty in
  let sizes = Array.sub sizes 0 (kappa + 1) in
  let offsets = Array.make (kappa + 1) base in
  for i = 1 to kappa do
    offsets.(i) <- offsets.(i - 1) + sizes.(i - 1)
  done;
  let probes =
    Array.init (kappa + 1) (fun i ->
        if i = 0 then t0 else if i = kappa then beta else 1)
  in
  { n; epsilon; base; obj; m; kappa; batch_sizes = sizes;
    batch_offsets = offsets; probes }

let try_batch (env : Env.t) t i =
  check_batch t i;
  let b = t.batch_sizes.(i) in
  let off = t.batch_offsets.(i) in
  let budget = t.probes.(i) in
  let rec probe j =
    if j > budget || b = 0 then begin
      env.emit (Events.Batch_failed { obj = t.obj; batch = i });
      None
    end
    else begin
      let x = env.random_int b in
      let loc = off + x in
      let won = env.tas loc in
      env.emit (Events.Probe { obj = t.obj; batch = i; location = loc; won });
      if won then begin
        env.emit (Events.Name_acquired { obj = t.obj; name = loc });
        Some loc
      end
      else probe (j + 1)
    end
  in
  probe 1

let backup_scan (env : Env.t) t =
  env.emit (Events.Backup_entered { obj = t.obj });
  let rec scan u =
    if u >= t.base + t.m then None
    else begin
      let won = env.tas u in
      env.emit (Events.Probe { obj = t.obj; batch = -1; location = u; won });
      if won then begin
        env.emit (Events.Name_acquired { obj = t.obj; name = u });
        Some u
      end
      else scan (u + 1)
    end
  in
  scan t.base

let get_name ?(backup = true) (env : Env.t) t =
  let rec batches i =
    if i > t.kappa then if backup then backup_scan env t else None
    else
      match try_batch env t i with
      | Some u -> Some u
      | None -> batches (i + 1)
  in
  batches 0
