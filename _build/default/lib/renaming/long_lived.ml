type t = { instance : Rebatching.t }

let make ?epsilon ?t0 ?beta ?base ~n () =
  { instance = Rebatching.make ?epsilon ?t0 ?beta ?base ~n () }

let instance t = t.instance

let acquire env t = Rebatching.get_name env t.instance

let release (env : Env.t) t name =
  if not (Rebatching.owns_name t.instance name) then
    invalid_arg "Long_lived.release: name outside this object's namespace";
  env.reset name;
  env.emit (Events.Name_released { obj = 0; name })

module Adaptive = struct
  let acquire env space = Adaptive_rebatching.get_name_releasing env space
  let acquire_fast env space = Fast_adaptive_rebatching.get_name_releasing env space

  let release (env : Env.t) space name =
    match Object_space.owner_of_name space name with
    | None ->
      invalid_arg "Long_lived.Adaptive.release: name outside every object"
    | Some obj ->
      env.reset name;
      env.emit (Events.Name_released { obj; name })
end
