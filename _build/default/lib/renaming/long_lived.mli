(** Long-lived loose renaming: acquire a name, use it, release it.

    The paper solves one-shot renaming; the long-lived variant (studied
    by Eberly, Higham and Warpechowska-Gruca [20] and surveyed in [16])
    lets processes return names to the pool so that a system with
    unbounded total participants but bounded {i concurrent} contention
    keeps living inside a small namespace — the regime of the
    worker-slot / connection-pool applications that motivate renaming.

    With hardware TAS the extension is direct: a name is a won TAS
    object, so releasing is resetting that object.  Safety is immediate
    from the TAS semantics — between a win and the corresponding reset,
    nobody else can win the cell, so {i at every instant the names of
    current holders are distinct}.  The performance analysis of §4
    applies per acquisition whenever the number of concurrent holders
    plus acquirers stays at most [n]: the execution is then
    indistinguishable from a one-shot execution with at most [n]
    participants started at the current memory state... with one caveat:
    a released cell makes batch occupancies non-monotone, which only
    {i helps} (more free cells than the one-shot analysis assumes).
    Experiment T11 measures steps per acquisition under churn.

    Usage: [acquire env t] as in one-shot; when done, [release env t
    name].  Releasing a name you do not hold is a protocol violation and
    is rejected when detectable. *)

type t
(** A long-lived renaming object: a ReBatching instance whose cells can
    be returned.  Immutable description; all state is behind the
    environment, as everywhere in this library. *)

val make :
  ?epsilon:float -> ?t0:int -> ?beta:int -> ?base:int -> n:int -> unit -> t
(** [make ~n ()] sizes the object for [n] concurrent holders; parameters
    as in {!Rebatching.make}. *)

val instance : t -> Rebatching.t
(** The underlying ReBatching geometry (namespace size, batches...). *)

val acquire : Env.t -> t -> int option
(** [acquire env t] obtains a name, [Figure 1]'s [GetName] verbatim.
    [None] only when every cell is simultaneously held — impossible with
    at most [n] concurrent holders. *)

val release : Env.t -> t -> int -> unit
(** [release env t name] returns [name] to the pool (one shared-memory
    reset step).  @raise Invalid_argument if [name] is outside the
    object's namespace.  Calling it for a name the caller does not hold
    is a protocol violation (it would free someone else's name); this
    module cannot detect that case and the caller must not do it. *)

(** {1 Adaptive variant}

    The same construction over the adaptive algorithms: acquisition by
    {!Adaptive_rebatching} (or {!Fast_adaptive_rebatching}), release by
    resetting the name's TAS cell in the shared {!Object_space}.  Names
    track the contention of each acquisition epoch. *)

module Adaptive : sig
  val acquire : Env.t -> Object_space.t -> int option
  (** {!Adaptive_rebatching.get_name}. *)

  val acquire_fast : Env.t -> Object_space.t -> int option
  (** {!Fast_adaptive_rebatching.get_name} (requires [epsilon = 1]). *)

  val release : Env.t -> Object_space.t -> int -> unit
  (** [release env space name] frees [name].  @raise Invalid_argument if
      [name] belongs to no object of [space]. *)
end
