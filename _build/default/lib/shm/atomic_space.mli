(** Real shared-memory TAS objects on OCaml 5 atomics.

    Where {!Sim.Location_space} simulates test-and-set under a controlled
    scheduler, this module is the genuine article: a fixed-capacity array
    of [bool Atomic.t] cells operated on concurrently by multiple
    {!Domain}s.  [tas] compiles to an atomic exchange, which is exactly
    the hardware TAS the paper assumes (§2, "Test-and-Set vs.
    Read-Write").

    Capacity is fixed up front (growing an array under concurrent access
    would need either locking or an epoch scheme, neither of which the
    algorithms require: the adaptive algorithms' layout is a pure
    function of the object index, so a capacity covering the largest
    reachable object suffices). *)

type t

val create : capacity:int -> t
(** [create ~capacity] allocates [capacity] free TAS cells.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val tas : t -> int -> bool
(** [tas t loc] atomically sets cell [loc]; returns [true] iff the caller
    changed it from free to taken (linearizable: exactly one winner).
    @raise Invalid_argument if [loc] is outside [0, capacity). *)

val release : t -> int -> unit
(** [release t loc] atomically frees cell [loc] — the reset operation of
    long-lived renaming.  Only the current holder may call it. *)

val is_taken : t -> int -> bool
(** Atomic read; for post-run verification, not used by algorithms. *)

val taken_count : t -> int
(** Number of taken cells (O(capacity) scan; call after the run). *)

val reset : t -> unit
(** Frees every cell.  Only call while no domain is operating on [t]. *)
