lib/shm/atomic_space.ml: Array Atomic
