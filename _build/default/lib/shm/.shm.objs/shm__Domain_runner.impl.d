lib/shm/domain_runner.ml: Array Atomic Atomic_space Domain Hashtbl Prng Renaming Unix
