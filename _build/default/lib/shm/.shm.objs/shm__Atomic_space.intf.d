lib/shm/atomic_space.mli:
