lib/shm/domain_runner.mli: Renaming
