type t = { cells : bool Atomic.t array }

let create ~capacity =
  if capacity < 1 then invalid_arg "Atomic_space.create: capacity must be >= 1";
  { cells = Array.init capacity (fun _ -> Atomic.make false) }

let capacity t = Array.length t.cells

let check t loc =
  if loc < 0 || loc >= Array.length t.cells then
    invalid_arg "Atomic_space.tas: location out of range"

let tas t loc =
  check t loc;
  not (Atomic.exchange t.cells.(loc) true)

let release t loc =
  check t loc;
  Atomic.set t.cells.(loc) false

let is_taken t loc =
  check t loc;
  Atomic.get t.cells.(loc)

let taken_count t =
  Array.fold_left (fun acc c -> if Atomic.get c then acc + 1 else acc) 0 t.cells

let reset t = Array.iter (fun c -> Atomic.set c false) t.cells
