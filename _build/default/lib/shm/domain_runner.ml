type result = {
  names : int option array;
  probes : int array;
  wall_ns : float;
  domains_used : int;
  total_probes : int;
}

let run ?domains ~seed ~procs ~capacity ~algo () =
  if procs < 1 then invalid_arg "Domain_runner.run: procs must be >= 1";
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Domain_runner.run: domains must be >= 1";
      min d procs
    | None -> min procs (min 8 (max 2 (Domain.recommended_domain_count ())))
  in
  let space = Atomic_space.create ~capacity in
  let root = Prng.Splitmix.of_int seed in
  let names = Array.make procs None in
  let probes = Array.make procs 0 in
  let start_latch = Atomic.make false in
  let run_process pid =
    let rng = Prng.Splitmix.split_at root pid in
    let count = ref 0 in
    let tas loc =
      incr count;
      Atomic_space.tas space loc
    in
    let reset loc =
      incr count;
      Atomic_space.release space loc
    in
    let env =
      Renaming.Env.make ~reset ~pid ~tas ~random_int:(Prng.Splitmix.int rng) ()
    in
    let name = algo env in
    (* Distinct [pid] slots per domain: plain writes race-free. *)
    names.(pid) <- name;
    probes.(pid) <- !count
  in
  let worker d () =
    while not (Atomic.get start_latch) do
      Domain.cpu_relax ()
    done;
    let pid = ref d in
    while !pid < procs do
      run_process !pid;
      pid := !pid + domains
    done
  in
  let handles = Array.init domains (fun d -> Domain.spawn (worker d)) in
  let t0 = Unix.gettimeofday () in
  Atomic.set start_latch true;
  Array.iter Domain.join handles;
  let t1 = Unix.gettimeofday () in
  {
    names;
    probes;
    wall_ns = (t1 -. t0) *. 1e9;
    domains_used = domains;
    total_probes = Array.fold_left ( + ) 0 probes;
  }

let check_unique_names r =
  let seen = Hashtbl.create (Array.length r.names) in
  Array.for_all
    (function
      | None -> false
      | Some u ->
        if Hashtbl.mem seen u then false
        else begin
          Hashtbl.replace seen u ();
          true
        end)
    r.names

let max_name r =
  Array.fold_left
    (fun acc -> function Some u when u > acc -> u | _ -> acc)
    (-1) r.names
