(** Run renaming algorithms on real multicore shared memory.

    [procs] logical processes are partitioned round-robin across
    [domains] OCaml domains; each domain runs its processes to completion
    back to back against the shared {!Atomic_space}.  All domains spin on
    a start latch so the contended phase begins simultaneously.

    This substrate cannot control interleaving (the OS and the memory
    system schedule), so it is used for what it is good at: validating
    that the algorithms are correct under genuine hardware concurrency,
    and measuring wall-clock cost under contention (experiment B1).  Step
    counts are still exact — each environment counts its own TAS calls.

    Determinism caveat: with more than one domain the interleaving — and
    therefore which process wins a contended cell, the probe counts, and
    the name assignment — varies run to run; only the per-process coin
    streams are reproducible from [seed]. *)

type result = {
  names : int option array;  (** per logical process *)
  probes : int array;  (** TAS calls per logical process *)
  wall_ns : float;  (** wall-clock time of the contended phase *)
  domains_used : int;
  total_probes : int;
}

val run :
  ?domains:int ->
  seed:int ->
  procs:int ->
  capacity:int ->
  algo:(Renaming.Env.t -> int option) ->
  unit ->
  result
(** [run ~seed ~procs ~capacity ~algo ()] executes [procs] copies of
    [algo].  [domains] defaults to
    [max 2 (Domain.recommended_domain_count ())], capped at 8 and at
    [procs].  @raise Invalid_argument if [procs < 1] or
    [capacity < 1]. *)

val check_unique_names : result -> bool
(** All assigned names distinct and every process got one. *)

val max_name : result -> int
(** Largest assigned name; [-1] if none. *)
