(** Schedule traces: record the exact sequence of scheduling decisions of
    a run and replay it later.

    A trace pins down everything the adversary chose — which process
    moved at each step and who was crashed — so a recorded execution can
    be re-driven deterministically even by code that has no access to the
    original strategy's internal state.  Uses:

    - regression artifacts: when a property test finds a violating
      execution, the trace (plus the seed) is a complete reproducer;
    - adversary fuzzing: random or mutated traces are themselves
      oblivious adversaries, exploring schedules no built-in strategy
      generates;
    - determinism checks: record a run, replay it, and demand identical
      results (part of the test suite).

    A replayed trace must be paired with the same seed and process code;
    replay validates liveness (the pid it wants to step must be waiting)
    and falls back to the lowest waiting pid when the trace is exhausted
    or the decision is stale (e.g. the process finished earlier than in
    the recording — only possible if seed or code changed). *)

type decision = Stepped of int | Crashed_pid of int

type t
(** An immutable recorded schedule. *)

val decisions : t -> decision list
(** In execution order. *)

val of_decisions : decision list -> t
(** Build a trace from an explicit decision list (used by the schedule
    search to turn mutated decision sequences back into replayable
    adversaries). *)

val length : t -> int

val recorder : Adversary.t -> Adversary.t * (unit -> t)
(** [recorder inner] wraps [inner]: the returned adversary behaves
    identically while recording every decision; the thunk extracts the
    trace accumulated so far (normally called after the run).  Each
    {!Adversary.t.make} of the wrapped adversary starts a fresh
    recording, so reuse the pair for one run at a time. *)

val replayer : t -> Adversary.t
(** [replayer trace] is an oblivious adversary that re-issues the
    recorded decisions in order, skipping decisions whose pid is no
    longer waiting and falling back to the lowest waiting pid when the
    trace runs dry. *)

val random_trace : Prng.Splitmix.t -> n:int -> steps:int -> t
(** [random_trace rng ~n ~steps] is a synthetic trace of [steps] uniform
    step decisions over pids [0, n) — raw material for schedule
    fuzzing. *)
