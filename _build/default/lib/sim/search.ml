type objective = Max_steps | Total_steps

type result = {
  best_score : int;
  initial_score : int;
  evaluations : int;
  best_trace : Trace.t;
  improvements : (int * int) list;
}

let score_of objective (r : Runner.result) =
  match objective with
  | Max_steps -> r.max_steps
  | Total_steps -> r.total_steps

(* Mutate a decision list: pick one of three local edits. *)
let mutate rng decisions n =
  let a = Array.of_list decisions in
  let len = Array.length a in
  if len = 0 then decisions
  else begin
    (match Prng.Splitmix.int rng 3 with
    | 0 ->
      (* swap two random positions *)
      let i = Prng.Splitmix.int rng len and j = Prng.Splitmix.int rng len in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    | 1 ->
      (* stall: rewrite a window to hammer one process *)
      let start = Prng.Splitmix.int rng len in
      let width = 1 + Prng.Splitmix.int rng (max 1 (len / 8)) in
      let pid = Prng.Splitmix.int rng n in
      for i = start to min (len - 1) (start + width - 1) do
        a.(i) <- Trace.Stepped pid
      done
    | _ ->
      (* shuffle a window *)
      let start = Prng.Splitmix.int rng len in
      let width = 2 + Prng.Splitmix.int rng (max 1 (len / 8)) in
      let stop = min (len - 1) (start + width - 1) in
      for i = stop downto start + 1 do
        let j = start + Prng.Splitmix.int rng (i - start + 1) in
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      done);
    Array.to_list a
  end

let hill_climb ~seed ~n ~algo ?(rounds = 40) ?(mutants_per_round = 8) objective =
  if n < 1 then invalid_arg "Search.hill_climb: n must be >= 1";
  if rounds < 1 || mutants_per_round < 1 then
    invalid_arg "Search.hill_climb: budgets must be >= 1";
  let rng = Prng.Splitmix.of_int (seed lxor 0x5ee4c4) in
  (* Baseline: record a random-scheduler run. *)
  let recorder, extract = Trace.recorder Adversary.random in
  let baseline = Runner.run ~adversary:recorder ~seed ~n ~algo () in
  let initial_trace = extract () in
  let initial_score = score_of objective baseline in
  let best_decisions = ref (Trace.decisions initial_trace) in
  let best_score = ref initial_score in
  let best_trace = ref initial_trace in
  let evaluations = ref 1 in
  let improvements = ref [] in
  for _round = 1 to rounds do
    for _m = 1 to mutants_per_round do
      let candidate = mutate rng !best_decisions n in
      (* Rerecord the replay so the stored best trace is the schedule
         that actually executed (mutations may contain stale decisions
         that the replayer skips). *)
      let recorder, extract =
        Trace.recorder (Trace.replayer (Trace.of_decisions candidate))
      in
      let r = Runner.run ~adversary:recorder ~seed ~n ~algo () in
      incr evaluations;
      let s = score_of objective r in
      if s > !best_score then begin
        best_score := s;
        best_decisions := candidate;
        best_trace := extract ();
        improvements := (!evaluations, s) :: !improvements
      end
    done
  done;
  {
    best_score = !best_score;
    initial_score;
    evaluations = !evaluations;
    best_trace = !best_trace;
    improvements = List.rev !improvements;
  }
