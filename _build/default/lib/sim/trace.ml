type decision = Stepped of int | Crashed_pid of int

type t = { decisions : decision array }

let decisions t = Array.to_list t.decisions
let of_decisions l = { decisions = Array.of_list l }
let length t = Array.length t.decisions

let recorder inner =
  let recorded = ref [] in
  let make ctx =
    recorded := [];
    let cb = inner.Adversary.make ctx in
    let pick () =
      let action = cb.Adversary.pick () in
      (match action with
      | Adversary.Step pid -> recorded := Stepped pid :: !recorded
      | Adversary.Crash pid -> recorded := Crashed_pid pid :: !recorded);
      action
    in
    { cb with Adversary.pick }
  in
  let extract () = { decisions = Array.of_list (List.rev !recorded) } in
  ({ Adversary.name = inner.Adversary.name ^ "+record"; make }, extract)

let replayer trace =
  let make _ctx =
    let waiting = Dynset.create () in
    let cursor = ref 0 in
    let lowest_waiting () =
      let best = ref max_int in
      Dynset.iter (fun pid -> if pid < !best then best := pid) waiting;
      !best
    in
    let rec pick () =
      if !cursor >= Array.length trace.decisions then
        Adversary.Step (lowest_waiting ())
      else begin
        let d = trace.decisions.(!cursor) in
        incr cursor;
        match d with
        | Stepped pid when Dynset.mem waiting pid -> Adversary.Step pid
        | Crashed_pid pid when Dynset.mem waiting pid -> Adversary.Crash pid
        | Stepped _ | Crashed_pid _ -> pick () (* stale decision: skip *)
      end
    in
    {
      Adversary.on_wait = (fun ~pid ~loc:_ ~op:_ -> Dynset.add waiting pid);
      on_tas = (fun ~loc:_ ~won:_ -> ());
      on_settle = (fun ~pid -> Dynset.remove waiting pid);
      pick;
    }
  in
  { Adversary.name = "replay"; make }

let random_trace rng ~n ~steps =
  if n < 1 then invalid_arg "Trace.random_trace: n must be >= 1";
  if steps < 0 then invalid_arg "Trace.random_trace: negative steps";
  { decisions = Array.init steps (fun _ -> Stepped (Prng.Splitmix.int rng n)) }
