type t = {
  mutable elements : int array;  (* elements.(0 .. size-1) are the members *)
  mutable size : int;
  positions : (int, int) Hashtbl.t;  (* member -> index in [elements] *)
}

let create () = { elements = Array.make 16 0; size = 0; positions = Hashtbl.create 64 }

let size t = t.size
let is_empty t = t.size = 0
let mem t v = Hashtbl.mem t.positions v

let add t v =
  if v < 0 then invalid_arg "Dynset.add: negative element";
  if not (mem t v) then begin
    if t.size = Array.length t.elements then begin
      let bigger = Array.make (2 * t.size) 0 in
      Array.blit t.elements 0 bigger 0 t.size;
      t.elements <- bigger
    end;
    t.elements.(t.size) <- v;
    Hashtbl.replace t.positions v t.size;
    t.size <- t.size + 1
  end

let remove t v =
  match Hashtbl.find_opt t.positions v with
  | None -> ()
  | Some idx ->
    let last = t.elements.(t.size - 1) in
    t.elements.(idx) <- last;
    Hashtbl.replace t.positions last idx;
    Hashtbl.remove t.positions v;
    t.size <- t.size - 1

let any t rng =
  if t.size = 0 then invalid_arg "Dynset.any: empty set";
  t.elements.(Prng.Splitmix.int rng t.size)

let first t =
  if t.size = 0 then invalid_arg "Dynset.first: empty set";
  t.elements.(t.size - 1)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.elements.(i)
  done

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.elements.(i) :: acc) in
  go (t.size - 1) []
