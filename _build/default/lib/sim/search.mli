(** Empirical worst-schedule search.

    The w.h.p. bounds quantify over {i all} adversaries, but any finite
    experiment only samples a few strategies.  This module attacks the
    algorithm with local search over the schedule space itself: record a
    run, then repeatedly mutate the decision sequence (reorderings,
    stalling windows, biased rewrites) and keep mutants that worsen the
    objective — with the process coins held fixed, so the search probes
    pure scheduling power, exactly what the adversary of §2 controls.

    The searched schedules are oblivious (they are fixed decision lists),
    so by Yao's-principle reasoning any bound they beat would already
    refute the oblivious-adversary claim; experiment T14 reports how far
    the search gets (spoiler, per the theory: not out of the
    [log log n + O(1)] band). *)

type objective =
  | Max_steps  (** worst per-process steps — the individual complexity *)
  | Total_steps  (** total work *)

type result = {
  best_score : int;
  initial_score : int;
  evaluations : int;  (** executions performed *)
  best_trace : Trace.t;
  improvements : (int * int) list;
      (** (evaluation index, new best score), oldest first *)
}

val hill_climb :
  seed:int ->
  n:int ->
  algo:(Renaming.Env.t -> int option) ->
  ?rounds:int ->
  ?mutants_per_round:int ->
  objective ->
  result
(** [hill_climb ~seed ~n ~algo objective] searches for [rounds] (default
    40) rounds of [mutants_per_round] (default 8) mutations each,
    starting from a recorded random schedule.  The process-coin seed is
    [seed] throughout; only the schedule varies.  @raise Invalid_argument
    if [n < 1] or the budgets are < 1. *)
