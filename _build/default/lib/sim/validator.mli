(** Adversary-contract validator.

    The scheduler ↔ adversary protocol ({!Adversary.callbacks}) has
    invariants that a buggy strategy could silently violate and thereby
    corrupt an experiment (e.g. stepping a process that is not waiting,
    which the scheduler rejects, or crashing one that already settled).
    [validated inner] wraps a strategy with a reference model of the
    protocol state and checks every interaction:

    - [on_wait] only for processes not currently waiting;
    - [on_settle] only for known processes, at most once until they wait
      again (they never do, but the model does not assume it);
    - [pick] must return a currently waiting pid, and must only be
      invoked while some process waits.

    Violations raise {!Contract_violation} naming the offence.  The test
    suite wraps every built-in strategy (and the trace replayer and the
    arrival wrappers) with this validator across randomized runs, turning
    the scheduling layer itself into a checked component. *)

exception Contract_violation of string

val validated : Adversary.t -> Adversary.t
(** [validated inner] behaves exactly like [inner] but checks the
    protocol; its name is [inner.name ^ "+check"]. *)
