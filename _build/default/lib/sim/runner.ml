type result = {
  names : int option array;
  steps : int array;
  crashed : bool array;
  total_steps : int;
  max_steps : int;
  space_used : int;
  crash_count : int;
  point_contention : int;
}

let make_env ~root ~on_event ~tas ~reset pid =
  let rng = Prng.Splitmix.split_at root pid in
  let emit =
    match on_event with
    | None -> fun (_ : Renaming.Events.t) -> ()
    | Some f -> fun e -> f ~pid e
  in
  Renaming.Env.make ~emit ~reset ~pid ~tas ~random_int:(Prng.Splitmix.int rng) ()

let surviving_max steps crashed =
  let m = ref 0 in
  Array.iteri (fun pid s -> if not crashed.(pid) && s > !m then m := s) steps;
  !m

let run ?(adversary = Adversary.random) ?on_event ?(max_total_steps = 10_000_000)
    ?capacity ~seed ~n ~algo () =
  let space = Location_space.create ?capacity () in
  let root = Prng.Splitmix.of_int seed in
  let adversary_rng = Prng.Splitmix.split_at root n in
  let body pid =
    let env = make_env ~root ~on_event ~tas:Proc.tas ~reset:Proc.reset pid in
    fun () -> algo env
  in
  let sched = Scheduler.create ~space ~adversary ~rng:adversary_rng ~n ~body () in
  Scheduler.run_to_completion ~max_steps:max_total_steps sched;
  let crashed = Array.init n (Scheduler.crashed sched) in
  let steps = Scheduler.step_counts sched in
  {
    names = Scheduler.names sched;
    steps;
    crashed;
    total_steps = Scheduler.total_steps sched;
    max_steps = surviving_max steps crashed;
    space_used = Location_space.high_water_mark space;
    crash_count = Scheduler.crash_count sched;
    point_contention = Scheduler.max_point_contention sched;
  }

let run_sequential ?(shuffled = true) ?on_event ?capacity ~seed ~n ~algo () =
  let space = Location_space.create ?capacity () in
  let root = Prng.Splitmix.of_int seed in
  let names = Array.make n None in
  let steps = Array.make n 0 in
  let order =
    if shuffled then Prng.Shuffle.permutation (Prng.Splitmix.split_at root n) n
    else Array.init n (fun i -> i)
  in
  Array.iter
    (fun pid ->
      let count = ref 0 in
      let tas loc =
        incr count;
        Location_space.tas space loc
      in
      let reset loc =
        incr count;
        Location_space.release space loc
      in
      let env = make_env ~root ~on_event ~tas ~reset pid in
      names.(pid) <- algo env;
      steps.(pid) <- !count)
    order;
  let total_steps = Array.fold_left ( + ) 0 steps in
  let crashed = Array.make n false in
  {
    names;
    steps;
    crashed;
    total_steps;
    max_steps = surviving_max steps crashed;
    space_used = Location_space.high_water_mark space;
    crash_count = 0;
    point_contention = 1;
  }

let check_unique_names r =
  let seen = Hashtbl.create (Array.length r.names) in
  let ok = ref true in
  Array.iteri
    (fun pid name ->
      if not r.crashed.(pid) then
        match name with
        | None -> ok := false
        | Some u ->
          if Hashtbl.mem seen u then ok := false else Hashtbl.replace seen u ())
    r.names;
  !ok

let max_name r =
  Array.fold_left
    (fun acc name -> match name with Some u when u > acc -> u | _ -> acc)
    (-1) r.names
