type _ Effect.t +=
  | Tas : int -> bool Effect.t
  | Reset : int -> unit Effect.t
  | Read : int -> int Effect.t
  | Write : int * int -> unit Effect.t

let tas loc = Effect.perform (Tas loc)
let reset loc = Effect.perform (Reset loc)
let read reg = Effect.perform (Read reg)
let write reg value = Effect.perform (Write (reg, value))
