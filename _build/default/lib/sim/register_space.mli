(** Simulated shared read/write registers.

    A second index space next to {!Location_space}: integer-valued
    multi-reader multi-writer atomic registers, initially 0, growing on
    demand.  Used by the read-write algorithms of the related-work
    reproduction (the sifters of Giakkoupis–Woelfel, the paper's
    reference [22]); the renaming algorithms themselves never touch
    registers — the paper assumes hardware TAS. *)

type t

val create : unit -> t
val read : t -> int -> int
(** [read t reg]; registers start at 0.  @raise Invalid_argument on a
    negative index. *)

val write : t -> int -> int -> unit

val peek : t -> int -> int
(** Like {!read} but without counting — the adversary's inspection
    channel, not a process step. *)

val reads : t -> int
(** Total read operations performed. *)

val writes : t -> int
val reset : t -> unit
