type t = {
  mutable cells : int array;
  mutable reads : int;
  mutable writes : int;
}

let create () = { cells = Array.make 64 0; reads = 0; writes = 0 }

let ensure t reg =
  if reg < 0 then invalid_arg "Register_space: negative register index";
  let n = Array.length t.cells in
  if reg >= n then begin
    let bigger = Array.make (max (reg + 1) (2 * n)) 0 in
    Array.blit t.cells 0 bigger 0 n;
    t.cells <- bigger
  end

let read t reg =
  ensure t reg;
  t.reads <- t.reads + 1;
  t.cells.(reg)

let write t reg v =
  ensure t reg;
  t.writes <- t.writes + 1;
  t.cells.(reg) <- v

let peek t reg =
  ensure t reg;
  t.cells.(reg)

let reads t = t.reads
let writes t = t.writes

let reset t =
  Array.fill t.cells 0 (Array.length t.cells) 0;
  t.reads <- 0;
  t.writes <- 0
