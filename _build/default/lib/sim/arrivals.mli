(** Arrival-pattern workloads.

    The paper's executions start with all processes ready; real
    contention arrives over time (bursts of workers, staggered joins).
    This module wraps any scheduling strategy so that process [pid]
    becomes schedulable only once the global clock — the number of
    shared-memory operations executed so far — reaches its arrival time.
    Until then the wrapped strategy does not even learn the process
    exists, so arrival patterns compose with every adversary, including
    recorded replays.

    If no arrived process is waiting, the clock jumps to the next
    arrival (the system is idle, so this costs nothing).

    Used by experiment T13 to measure how the adaptive algorithms track
    instantaneous contention rather than total participation. *)

val with_arrival_times : times:int array -> Adversary.t -> Adversary.t
(** [with_arrival_times ~times inner] holds back process [pid] until
    [times.(pid)] operations have executed.  Processes with pid beyond
    the array arrive at time 0.  @raise Invalid_argument on negative
    times. *)

val staggered : interval:int -> Adversary.t -> Adversary.t
(** Process [pid] arrives at time [pid * interval] — a steady trickle.
    @raise Invalid_argument if [interval < 0]. *)

val bursts : size:int -> gap:int -> Adversary.t -> Adversary.t
(** Processes arrive in groups of [size] separated by [gap] operations:
    pid [p] arrives at [(p / size) * gap].  @raise Invalid_argument
    unless [size >= 1] and [gap >= 0]. *)
