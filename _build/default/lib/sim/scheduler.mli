(** The deterministic step scheduler.

    Runs a set of processes (OCaml functions performing the {!Proc.Tas}
    effect) against a {!Location_space.t} under a chosen
    {!Adversary.t}.  One scheduled step = the execution of exactly one
    pending TAS followed by the process's local computation up to its
    next TAS request (or its return) — the paper's §2 cost model.

    Lifecycle: {!create} starts every process body and runs it up to its
    first pending TAS (local computation is free, so this consumes no
    steps); {!run_to_completion} then repeatedly asks the adversary for an
    action until no process is waiting, i.e. all have finished or
    crashed. *)

type t

exception Step_limit_exceeded
(** Raised by {!run_to_completion} when the step budget is exhausted —
    a guard against non-terminating algorithm/adversary pairs. *)

val create :
  ?registers:Register_space.t ->
  space:Location_space.t ->
  adversary:Adversary.t ->
  rng:Prng.Splitmix.t ->
  n:int ->
  body:(int -> unit -> int option) ->
  unit ->
  t
(** [create ~space ~adversary ~rng ~n ~body ()] starts processes
    [0 .. n-1]; [body pid] is the code of process [pid], returning its
    name (or any int payload).  [rng] seeds the adversary's private
    randomness.  [registers] (default: a fresh {!Register_space}) backs
    the read/write effects. *)

val run_to_completion : ?max_steps:int -> t -> unit
(** Drive the schedule until every process has finished or crashed.
    [max_steps] (default [10_000_000]) bounds the total number of
    executed TAS operations.  @raise Step_limit_exceeded on overrun. *)

(** {1 Results} *)

val name_of : t -> int -> int option
(** [name_of t pid] is the name returned by [pid]'s body ([None] if the
    body gave up, still runs, or crashed). *)

val crashed : t -> int -> bool

val max_point_contention : t -> int
(** The largest number of processes that were simultaneously {i active}
    (had executed at least one operation and not yet finished or
    crashed) — the point contention of the execution.  With staggered
    arrivals this can be far below [n], which is what experiment T13
    reports. *)

val steps_of : t -> int -> int
(** Number of TAS operations executed by [pid]. *)

val total_steps : t -> int
val names : t -> int option array
val step_counts : t -> int array
val crash_count : t -> int
