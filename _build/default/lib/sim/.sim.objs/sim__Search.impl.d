lib/sim/search.ml: Adversary Array List Prng Runner Trace
