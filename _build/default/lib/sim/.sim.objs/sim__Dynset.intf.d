lib/sim/dynset.mli: Prng
