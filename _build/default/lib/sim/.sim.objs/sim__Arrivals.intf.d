lib/sim/arrivals.mli: Adversary
