lib/sim/validator.mli: Adversary
