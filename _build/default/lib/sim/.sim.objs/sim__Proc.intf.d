lib/sim/proc.mli: Effect
