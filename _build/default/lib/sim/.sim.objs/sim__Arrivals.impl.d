lib/sim/arrivals.ml: Adversary Array Dynset Hashtbl List
