lib/sim/scheduler.ml: Adversary Array Effect Location_space Proc Register_space
