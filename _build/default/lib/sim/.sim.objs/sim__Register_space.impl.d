lib/sim/register_space.ml: Array
