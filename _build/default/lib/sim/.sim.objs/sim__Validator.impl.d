lib/sim/validator.ml: Adversary Dynset Printf
