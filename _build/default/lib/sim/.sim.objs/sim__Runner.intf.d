lib/sim/runner.mli: Adversary Renaming
