lib/sim/trace.mli: Adversary Prng
