lib/sim/register_space.mli:
