lib/sim/trace.ml: Adversary Array Dynset List Prng
