lib/sim/adversary.ml: Array Dynset Float Hashtbl List Printf Prng Queue
