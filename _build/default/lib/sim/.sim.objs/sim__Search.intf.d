lib/sim/search.mli: Renaming Trace
