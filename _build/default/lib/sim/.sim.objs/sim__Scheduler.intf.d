lib/sim/scheduler.mli: Adversary Location_space Prng Register_space
