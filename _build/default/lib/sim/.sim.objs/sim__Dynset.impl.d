lib/sim/dynset.ml: Array Hashtbl Prng
