lib/sim/location_space.ml: Array Bytes
