lib/sim/proc.ml: Effect
