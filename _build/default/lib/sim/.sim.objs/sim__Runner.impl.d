lib/sim/runner.ml: Adversary Array Hashtbl Location_space Prng Proc Renaming Scheduler
