lib/sim/location_space.mli:
