(** A dynamic set of small non-negative integers with O(1) insert, delete,
    membership and uniform random choice.

    The scheduler and the adversary strategies maintain sets of waiting
    process ids and of contended locations; all of them must be updated on
    every simulated step, so constant-time operations are required to keep
    large simulations (millions of steps) fast. *)

type t

val create : unit -> t
val size : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val add : t -> int -> unit
(** [add t v] inserts [v]; no-op if already present.
    @raise Invalid_argument on negative [v]. *)

val remove : t -> int -> unit
(** [remove t v] deletes [v]; no-op if absent. *)

val any : t -> Prng.Splitmix.t -> int
(** [any t rng] is a uniformly random element.  @raise Invalid_argument if
    the set is empty. *)

val first : t -> int
(** An arbitrary element (the one cheapest to produce; deterministic given
    the operation history).  @raise Invalid_argument if empty. *)

val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
(** Elements in unspecified order. *)
