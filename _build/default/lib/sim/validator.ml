exception Contract_violation of string

let fail fmt = Printf.ksprintf (fun s -> raise (Contract_violation s)) fmt

let validated inner =
  let make ctx =
    let cb = inner.Adversary.make ctx in
    let waiting = Dynset.create () in
    let settled = Dynset.create () in
    let on_wait ~pid ~loc ~op =
      if pid < 0 then fail "on_wait: negative pid %d" pid;
      if Dynset.mem waiting pid then fail "on_wait: pid %d already waiting" pid;
      if Dynset.mem settled pid then fail "on_wait: pid %d already settled" pid;
      Dynset.add waiting pid;
      cb.Adversary.on_wait ~pid ~loc ~op
    in
    let on_tas ~loc ~won =
      if loc < 0 then fail "on_tas: negative location %d" loc;
      cb.Adversary.on_tas ~loc ~won
    in
    let on_settle ~pid =
      if Dynset.mem settled pid then fail "on_settle: pid %d settled twice" pid;
      (* a settle may follow a step (process finished while Running), so
         the pid is not necessarily in [waiting] here *)
      Dynset.remove waiting pid;
      Dynset.add settled pid;
      cb.Adversary.on_settle ~pid
    in
    let pick () =
      if Dynset.is_empty waiting then fail "pick: called with nobody waiting";
      let action = cb.Adversary.pick () in
      (match action with
      | Adversary.Step pid ->
        if not (Dynset.mem waiting pid) then
          fail "pick: Step %d but the process is not waiting" pid;
        (* executing the step removes the pending op; the process will
           either wait again (on_wait) or settle (on_settle) *)
        Dynset.remove waiting pid
      | Adversary.Crash pid ->
        if not (Dynset.mem waiting pid) then
          fail "pick: Crash %d but the process is not waiting" pid;
        Dynset.remove waiting pid);
      action
    in
    { Adversary.on_wait; on_tas; on_settle; pick }
  in
  { Adversary.name = inner.Adversary.name ^ "+check"; make }
