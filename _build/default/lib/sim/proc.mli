(** The effects through which simulated processes issue shared-memory
    operations.

    A simulated process is ordinary OCaml code whose [Env.t] closures
    perform these effects; the scheduler's handler captures the
    continuation, so the process is suspended at *exactly* its
    shared-memory steps — local computation runs atomically in between,
    matching the paper's cost model (§2) where only shared memory
    operations count and are interleaved. *)

type _ Effect.t +=
  | Tas : int -> bool Effect.t
        (** [perform (Tas loc)] requests a test-and-set on [loc]; resumes
            with [true] iff the process won. *)
  | Reset : int -> unit Effect.t
        (** [perform (Reset loc)] requests the release of a taken
            location — the operation long-lived renaming uses to return a
            name.  Costs one step, like [Tas]. *)
  | Read : int -> int Effect.t
        (** [perform (Read reg)] reads shared register [reg] (registers
            are a separate index space from TAS locations, holding ints,
            initially 0).  Used by the read-write algorithms of the
            related-work reproduction (sifters). *)
  | Write : int * int -> unit Effect.t
        (** [perform (Write (reg, v))] writes [v] to register [reg]. *)

val tas : int -> bool
(** [tas loc] performs the {!Tas} effect.  Must be called from code
    running under the scheduler; calling it elsewhere raises
    [Effect.Unhandled]. *)

val reset : int -> unit
(** [reset loc] performs the {!Reset} effect. *)

val read : int -> int
(** [read reg] performs the {!Read} effect. *)

val write : int -> int -> unit
(** [write reg v] performs the {!Write} effect. *)
