lib/baselines/adaptive_doubling.ml: Renaming
