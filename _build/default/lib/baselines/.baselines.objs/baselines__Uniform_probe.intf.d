lib/baselines/uniform_probe.mli: Renaming
