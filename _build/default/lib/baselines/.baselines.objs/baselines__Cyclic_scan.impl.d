lib/baselines/cyclic_scan.ml: Renaming
