lib/baselines/linear_scan.mli: Renaming
