lib/baselines/linear_scan.ml: Renaming
