lib/baselines/uniform_probe.ml: Renaming
