lib/baselines/adaptive_doubling.mli: Renaming
