lib/baselines/cyclic_scan.mli: Renaming
