(** Baseline: uniform random probing.

    The naive randomized renaming strategy sketched in the paper's
    introduction: repeatedly test-and-set a location chosen uniformly at
    random among all [m] locations until one is won.

    With [m = (1+eps) n] this terminates, but §4 notes that with
    probability [1 - o(1)] some process needs [Omega(log n)] probes — the
    baseline that ReBatching beats exponentially.  Experiment T1 measures
    the crossover. *)

val get_name : Renaming.Env.t -> m:int -> max_steps:int -> int option
(** [get_name env ~m ~max_steps] probes uniformly over global locations
    [0, m) until a win, giving up (returning [None]) after [max_steps]
    probes.  [max_steps] bounds the worst case — the strategy alone is
    only lock-free, not wait-free.  @raise Invalid_argument if [m < 1] or
    [max_steps < 1]. *)
