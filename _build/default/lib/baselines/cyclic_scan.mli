(** Baseline: random-start cyclic scan (linear-probing style).

    A process picks a uniformly random start location and then scans
    cyclically until it wins.  This is the renaming analogue of
    linear-probing hash insertion; with [m = (1+eps) n] its expected probe
    count is constant, but clustering makes the *maximum* over processes
    [Theta(log n)] — another [log n]-class baseline for experiment T1,
    interesting because its average is excellent. *)

val get_name : Renaming.Env.t -> m:int -> int option
(** [get_name env ~m] probes [start, start+1, ... (mod m)]; [None] if a
    full cycle finds every location taken.  @raise Invalid_argument if
    [m < 1]. *)
