(** Baseline: adaptive doubling with uniform probes.

    The pre-ReBatching adaptive strategy in the style of Alistarh et al.
    [6] ("Fast randomized test-and-set and renaming", DISC 2010): maintain
    a guess [2^l] for the contention; make [c] uniformly random probes in
    a namespace of size [2^{l+1}]; on failure double the guess.  Names are
    [O(k)] w.h.p. and the step complexity is [O(log k)] probes per level
    over [O(log k)] levels in the worst case — the [O(log^2 k)]-class
    comparator that AdaptiveReBatching improves to [O((log log k)^2)]
    (experiments T5/T6).

    Levels use the same disjoint-namespace layout as the ReBatching object
    space so that measured name values are comparable. *)

val get_name :
  Renaming.Env.t -> ?probes_per_level:int -> Renaming.Object_space.t -> int option
(** [get_name env space] races levels [l = 0, 1, ...], making
    [probes_per_level] (default 4) uniform probes over the whole namespace
    of object [R_{l+1}] at each level; [None] past
    {!Renaming.Object_space.max_index}. *)
