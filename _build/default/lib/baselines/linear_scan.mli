(** Baseline: deterministic sequential scan.

    Every process test-and-sets locations [0, 1, 2, ...] in order until it
    wins one.  This is the trivially correct wait-free algorithm with an
    *optimal* namespace (a process that wins location [j] has lost
    [j - 1] distinct earlier locations, so names are [<= k]) but
    [Theta(k)] step complexity — the "tight renaming is slow" end of the
    trade-off space.  It doubles as the backup phase of Figure 1. *)

val get_name : Renaming.Env.t -> m:int -> int option
(** [get_name env ~m] scans locations [0 .. m-1]; [None] if all [m] are
    taken.  @raise Invalid_argument if [m < 1]. *)
