let get_name (env : Renaming.Env.t) ~m =
  if m < 1 then invalid_arg "Cyclic_scan.get_name: m must be >= 1";
  let start = env.random_int m in
  let rec scan i =
    if i >= m then None
    else begin
      let loc = (start + i) mod m in
      let won = env.tas loc in
      env.emit (Renaming.Events.Probe { obj = 0; batch = 0; location = loc; won });
      if won then begin
        env.emit (Renaming.Events.Name_acquired { obj = 0; name = loc });
        Some loc
      end
      else scan (i + 1)
    end
  in
  scan 0
