let get_name (env : Renaming.Env.t) ~m ~max_steps =
  if m < 1 then invalid_arg "Uniform_probe.get_name: m must be >= 1";
  if max_steps < 1 then
    invalid_arg "Uniform_probe.get_name: max_steps must be >= 1";
  let rec probe step =
    if step > max_steps then None
    else begin
      let loc = env.random_int m in
      let won = env.tas loc in
      env.emit (Renaming.Events.Probe { obj = 0; batch = 0; location = loc; won });
      if won then begin
        env.emit (Renaming.Events.Name_acquired { obj = 0; name = loc });
        Some loc
      end
      else probe (step + 1)
    end
  in
  probe 1
