let get_name (env : Renaming.Env.t) ?(probes_per_level = 4) space =
  if probes_per_level < 1 then
    invalid_arg "Adaptive_doubling.get_name: probes_per_level must be >= 1";
  let rec level i =
    if i > Renaming.Object_space.cap space then None
    else begin
      env.emit (Renaming.Events.Object_visited { obj = i });
      let r = Renaming.Object_space.obj space i in
      let base = Renaming.Rebatching.base r in
      let m = Renaming.Rebatching.size r in
      let rec probe j =
        if j > probes_per_level then None
        else begin
          let loc = base + env.random_int m in
          let won = env.tas loc in
          env.emit
            (Renaming.Events.Probe { obj = i; batch = 0; location = loc; won });
          if won then begin
            env.emit (Renaming.Events.Name_acquired { obj = i; name = loc });
            Some loc
          end
          else probe (j + 1)
        end
      in
      match probe 1 with Some u -> Some u | None -> level (i + 1)
    end
  in
  level 1
