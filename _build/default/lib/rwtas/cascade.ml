type result = {
  exit_level : int array;
  survivors_per_level : int array;
  total_steps : int;
}

let suggested_levels ~n =
  let log2 x = log x /. log 2. in
  let ll = log2 (Float.max 2. (log2 (Float.max 2. (float_of_int n)))) in
  int_of_float (Float.ceil ll) + 3

let run ?(adversary = Sim.Adversary.random) ?levels ~seed ~n () =
  if n < 1 then invalid_arg "Cascade.run: n must be >= 1";
  let levels = match levels with None -> suggested_levels ~n | Some l -> l in
  if levels < 1 then invalid_arg "Cascade.run: levels must be >= 1";
  (* Write probability per level: the expected crowd decays as
     k -> 2 sqrt k from k_0 = n; precompute the schedule. *)
  let probabilities =
    let k = ref (float_of_int n) in
    Array.init levels (fun _ ->
        let p = Sifter.suggested_probability ~expected_contention:!k in
        k := Float.max 1. (2. *. sqrt !k);
        p)
  in
  let root = Prng.Splitmix.of_int seed in
  let body pid =
    let rng = Prng.Splitmix.split_at root pid in
    fun () ->
      let rec level l =
        if l >= levels then Some levels
        else begin
          let heads = Prng.Splitmix.bernoulli rng probabilities.(l) in
          match
            Sifter.sift ~read:Sim.Proc.read ~write:Sim.Proc.write ~heads ~pid
              ~reg:l
          with
          | Sifter.Stay -> level (l + 1)
          | Sifter.Leave -> Some l
        end
      in
      level 0
  in
  let space = Sim.Location_space.create () in
  let sched =
    Sim.Scheduler.create ~space ~adversary
      ~rng:(Prng.Splitmix.split_at root n)
      ~n ~body ()
  in
  Sim.Scheduler.run_to_completion sched;
  let exit_level =
    Array.init n (fun pid ->
        match Sim.Scheduler.name_of sched pid with
        | Some l -> l
        | None -> 0 (* crashed: count as leaving immediately *))
  in
  let survivors_per_level =
    Array.init (levels + 1) (fun l ->
        Array.fold_left
          (fun acc e -> if e >= l then acc + 1 else acc)
          0 exit_level)
  in
  { exit_level; survivors_per_level; total_steps = Sim.Scheduler.total_steps sched }

let survivors r = r.survivors_per_level.(Array.length r.survivors_per_level - 1)
