(** A cascade of sifters: the contention-reduction pipeline of the
    read/write TAS constructions the paper cites.

    Level [l] is one {!Sifter} with write probability tuned for the
    expected crowd [n^(2^-l)]; a process walks the levels until it leaves
    (drops out of the competition) or survives them all.  The theory
    (GW'12, vs a weak adversary): after [Theta(log log n)] levels only
    [O(1)] processes survive w.h.p., each having spent one step per
    level.  This module measures that — it is the experimental substrate
    for experiment T17, not a full TAS (a complete construction would
    finish the survivors through a 2-process elimination endgame, which
    needs machinery outside this paper's scope). *)

type result = {
  exit_level : int array;
      (** per pid: the level at which the process left, or [levels] if it
          survived the whole cascade *)
  survivors_per_level : int array;
      (** index [l]: processes entering level [l]; length [levels + 1],
          the last entry being the final survivor count *)
  total_steps : int;
}

val suggested_levels : n:int -> int
(** [ceil (log2 (log2 n)) + 3] — enough levels to reach a constant crowd
    from [n] under the square-root decay, with slack. *)

val run :
  ?adversary:Sim.Adversary.t ->
  ?levels:int ->
  seed:int ->
  n:int ->
  unit ->
  result
(** [run ~seed ~n ()] pushes [n] concurrent processes through the
    cascade under [adversary] (default {!Sim.Adversary.random},
    oblivious).  Deterministic in the seed.  [levels] defaults to
    {!suggested_levels}.  @raise Invalid_argument if [n < 1] or
    [levels < 1]. *)

val survivors : result -> int
(** Processes that survived every level. *)
