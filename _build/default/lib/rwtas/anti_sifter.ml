(* Policy: execute pending operations lowest register (= cascade level)
   first, and within a level all reads before any write.  Inductively, a
   level's first write can only execute once every live process has
   passed that level, so no process ever reads a non-empty register, and
   nobody is ever sifted out. *)

let adversary =
  let make (ctx : Sim.Adversary.ctx) =
    let waiting = Sim.Dynset.create () in
    (* per-register reader and writer pools *)
    let readers : (int, Sim.Dynset.t) Hashtbl.t = Hashtbl.create 16 in
    let writers : (int, Sim.Dynset.t) Hashtbl.t = Hashtbl.create 16 in
    let membership : (int, [ `Reader of int | `Writer of int ]) Hashtbl.t =
      Hashtbl.create 64
    in
    let regs = Sim.Dynset.create () in
    (* registers with any pending op *)
    let pool table reg =
      match Hashtbl.find_opt table reg with
      | Some g -> g
      | None ->
        let g = Sim.Dynset.create () in
        Hashtbl.replace table reg g;
        g
    in
    let prune reg =
      let empty table =
        match Hashtbl.find_opt table reg with
        | None -> true
        | Some g -> Sim.Dynset.is_empty g
      in
      if empty readers && empty writers then Sim.Dynset.remove regs reg
    in
    let detach pid =
      match Hashtbl.find_opt membership pid with
      | None -> ()
      | Some (`Reader reg) ->
        Hashtbl.remove membership pid;
        Sim.Dynset.remove (pool readers reg) pid;
        prune reg
      | Some (`Writer reg) ->
        Hashtbl.remove membership pid;
        Sim.Dynset.remove (pool writers reg) pid;
        prune reg
    in
    let on_wait ~pid ~loc ~op =
      detach pid;
      Sim.Dynset.add waiting pid;
      match op with
      | Sim.Adversary.Read_op ->
        Sim.Dynset.add (pool readers loc) pid;
        Hashtbl.replace membership pid (`Reader loc);
        Sim.Dynset.add regs loc
      | Sim.Adversary.Write_op ->
        Sim.Dynset.add (pool writers loc) pid;
        Hashtbl.replace membership pid (`Writer loc);
        Sim.Dynset.add regs loc
      | Sim.Adversary.Tas_op | Sim.Adversary.Reset_op -> ()
    in
    let on_settle ~pid =
      detach pid;
      Sim.Dynset.remove waiting pid
    in
    let pick () =
      (* lowest register with a pending op; readers before writers *)
      let best = ref max_int in
      Sim.Dynset.iter (fun reg -> if reg < !best then best := reg) regs;
      if !best = max_int then Sim.Adversary.Step (Sim.Dynset.any waiting ctx.rng)
      else begin
        let candidates =
          match Hashtbl.find_opt readers !best with
          | Some g when not (Sim.Dynset.is_empty g) -> g
          | Some _ | None -> pool writers !best
        in
        Sim.Adversary.Step (Sim.Dynset.first candidates)
      end
    in
    { Sim.Adversary.on_wait; on_tas = (fun ~loc:_ ~won:_ -> ()); on_settle; pick }
  in
  { Sim.Adversary.name = "anti-sifter"; make }
