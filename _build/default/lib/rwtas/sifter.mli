(** The one-register randomized sifter (Giakkoupis–Woelfel, PODC 2012 —
    the paper's reference [22]).

    The paper assumes hardware TAS; the references it leans on ([3, 22])
    build randomized TAS from plain read/write registers against a weak
    adversary, and their engine is the {i sifter}: one shared register
    through which a crowd of [k] processes is "sifted" so that only
    [O(sqrt k)] continue, at one shared-memory step each.

    Protocol (per process, one sifter, one register [r], initially 0):
    + with probability [p]: write your id into [r] and {b stay};
    + otherwise: read [r]; {b stay} if it still holds 0, {b leave}
      otherwise.

    Properties:
    + {b safety (always, any adversary)}: at least one process stays —
      if anyone writes, writers stay; if nobody writes, every reader sees
      0 and stays.  A solo process always stays.
    + {b sifting (weak adversary)}: with [k] enterers, expected stayers
      are about [k p + 1/p]; choosing [p = 1/sqrt k] gives [~ 2 sqrt k].
      Iterating sifters therefore reaches a constant crowd in
      [Theta(log log n)] levels — the doubly-logarithmic phenomenon this
      repository keeps meeting.
    + {b adversarial failure (strong adversary)}: a scheduler that runs
      all readers before any writer makes {i everyone} stay
      ({!Anti_sifter}), which is precisely why sifter-based TAS needs a
      weak adversary while this paper's renaming algorithms, built on
      hardware TAS, survive a strong one. *)

type outcome = Stay | Leave

val sift :
  read:(int -> int) ->
  write:(int -> int -> unit) ->
  heads:bool ->
  pid:int ->
  reg:int ->
  outcome
(** [sift ~read ~write ~heads ~pid ~reg] runs one sifter access on
    register [reg]; [heads] is the caller's (already flipped, probability
    [p]) coin.  Performs exactly one shared-memory operation.  The stored
    id is [pid + 1] (0 is reserved for "empty"). *)

val suggested_probability : expected_contention:float -> float
(** [suggested_probability ~expected_contention:k] is
    [min 1 (1 / sqrt k)] — the write probability balancing the writer
    and early-reader populations. *)
