type outcome = Stay | Leave

let sift ~read ~write ~heads ~pid ~reg =
  if heads then begin
    write reg (pid + 1);
    Stay
  end
  else if read reg = 0 then Stay
  else Leave

let suggested_probability ~expected_contention =
  if expected_contention <= 1. then 1.
  else Float.min 1. (1. /. sqrt expected_contention)
