(** The strong-adversary schedule that defeats sifters.

    A sifter only eliminates readers that see a non-empty register, so a
    scheduler that (a) executes every pending {i read} while the target
    register is still empty and (b) delays writes until no such read is
    pending, keeps every process alive: readers see 0 and stay, writers
    stay by definition.  Implementing that policy requires seeing the
    {i kind} and target of pending operations — strong-adversary power —
    which is exactly why the sifter-based TAS constructions ([3, 22])
    assume a weak adversary, and why this paper's headline (renaming in
    [O(log log n)] {i against a strong adversary}) needs hardware TAS.

    Experiment T17 runs the cascade under this adversary to exhibit the
    failure: survivor counts barely decay. *)

val adversary : Sim.Adversary.t
(** Picks, in priority order: a pending read whose register is still 0;
    any pending read; then writes/others (uniformly at random within each
    class). *)
