lib/rwtas/cascade.ml: Array Float Prng Sifter Sim
