lib/rwtas/sifter.ml: Float
