lib/rwtas/anti_sifter.mli: Sim
