lib/rwtas/sifter.mli:
