lib/rwtas/anti_sifter.ml: Hashtbl Sim
