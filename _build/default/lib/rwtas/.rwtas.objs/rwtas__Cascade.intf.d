lib/rwtas/cascade.mli: Sim
