(** Experiment T13 — arrival patterns (extension).

    The paper's executions start all processes at once; this experiment
    drives the same algorithms with processes arriving over time — a
    steady trickle ([Arrivals.staggered]) and periodic bursts
    ([Arrivals.bursts]) — under the random scheduler.  Checks that
    uniqueness and the namespace bound are schedule-shape-independent
    (the adaptive bound is in terms of {i interval} contention, i.e.
    total participants, so names may not shrink under staggering — the
    table makes that visible), and that worst-case steps stay in the
    all-at-once band. *)

val exp : Experiment.t
