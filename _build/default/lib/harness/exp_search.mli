(** Experiment T14 — adversarial schedule search (extension).

    T7 checks a handful of named strategies; this experiment lets local
    search hunt for bad schedules directly: hill-climbing over recorded
    decision sequences with the process coins frozen, keeping mutants
    that increase the worst per-process step count.  If the w.h.p. band
    of Theorem 4.1 were escapable by scheduling alone, the search would
    climb; the claim under test is that it plateaus inside the
    deterministic phase budget [t0 + kappa - 1 + beta].  The uniform
    baseline is searched with the same budget for contrast — its
    schedule sensitivity is visibly higher. *)

val exp : Experiment.t
