(** Experiment T4 — backup-phase frequency (§4).

    The analysis shows the sequential backup scan of Figure 1 is entered
    with probability at most [1/n^(beta - o(1))] per execution.  This
    experiment counts backup entries over many trials at each [n]
    (expected: zero) and, as a positive control, verifies that a
    deliberately overloaded instance does enter the backup phase. *)

val exp : Experiment.t
