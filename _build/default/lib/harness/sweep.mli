(** Parameter sweeps and seeded repetition.

    Conventions shared by all experiments: problem sizes grow
    geometrically; each measurement is repeated over [trials] consecutive
    seeds derived from the experiment's base seed, so rerunning with the
    same CLI arguments reproduces the table bit for bit. *)

val geometric_sizes : lo:int -> hi:int -> factor:int -> int list
(** [geometric_sizes ~lo ~hi ~factor] is [lo; lo*factor; ...] up to and
    including the last value [<= hi].  @raise Invalid_argument unless
    [1 <= lo], [lo <= hi] and [factor >= 2]. *)

val scaled : float -> int -> int
(** [scaled scale n] is [max 1 (round (scale * n))] — how experiments
    apply the CLI [--scale] knob to their default sizes. *)

val over_seeds : seed:int -> trials:int -> (int -> float) -> Stats.Summary.t
(** [over_seeds ~seed ~trials f] runs [f] on seeds
    [seed, seed+1, ..., seed+trials-1] and summarizes the results.
    @raise Invalid_argument if [trials < 1]. *)

val collect_seeds : seed:int -> trials:int -> (int -> 'a) -> 'a list
(** Like {!over_seeds} but keeps the raw values. *)

val fit_lines :
  models:Stats.Regression.model list ->
  sizes:float array ->
  values:float array ->
  string list
(** One human-readable line per model: name, slope, intercept, R^2 —
    appended below the growth tables so the claimed complexity shape can
    be read off directly. *)
