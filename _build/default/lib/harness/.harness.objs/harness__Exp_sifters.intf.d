lib/harness/exp_sifters.mli: Experiment
