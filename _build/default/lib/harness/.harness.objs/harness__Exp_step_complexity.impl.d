lib/harness/exp_step_complexity.ml: Array Baselines Experiment List Renaming Sim Stats Sweep Table
