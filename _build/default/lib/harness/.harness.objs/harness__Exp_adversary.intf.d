lib/harness/exp_adversary.mli: Experiment
