lib/harness/exp_crashes.mli: Experiment
