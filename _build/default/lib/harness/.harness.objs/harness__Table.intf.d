lib/harness/table.mli:
