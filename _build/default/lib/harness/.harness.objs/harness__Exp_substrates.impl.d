lib/harness/exp_substrates.ml: Array Baselines Experiment List Printf Renaming Shm Sim Stats Sweep Table
