lib/harness/exp_tail.ml: Array Experiment Float List Printf Prng Renaming Sim Stats Sweep Table
