lib/harness/exp_adaptive.mli: Experiment
