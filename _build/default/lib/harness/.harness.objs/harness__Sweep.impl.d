lib/harness/sweep.ml: Array Float List Printf Stats
