lib/harness/exp_backup_rate.mli: Experiment
