lib/harness/exp_constants.ml: Baselines Experiment List Printf Renaming Sim Stats Sweep Table
