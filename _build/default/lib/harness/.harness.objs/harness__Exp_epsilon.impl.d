lib/harness/exp_epsilon.ml: Experiment List Printf Renaming Sim Stats Sweep Table
