lib/harness/exp_churn.mli: Experiment
