lib/harness/sweep.mli: Stats
