lib/harness/experiment.ml: Table
