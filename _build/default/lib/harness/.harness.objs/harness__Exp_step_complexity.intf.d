lib/harness/exp_step_complexity.mli: Experiment
