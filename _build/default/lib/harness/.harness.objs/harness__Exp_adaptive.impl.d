lib/harness/exp_adaptive.ml: Array Baselines Experiment Float List Renaming Sim Stats Sweep Table
