lib/harness/exp_arrivals.ml: Experiment List Printf Renaming Sim Stats Sweep Table
