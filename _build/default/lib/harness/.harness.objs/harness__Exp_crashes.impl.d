lib/harness/exp_crashes.ml: Experiment List Printf Renaming Sim Stats Sweep Table
