lib/harness/exp_epsilon.mli: Experiment
