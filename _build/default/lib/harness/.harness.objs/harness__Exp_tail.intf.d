lib/harness/exp_tail.mli: Experiment
