lib/harness/exp_substrates.mli: Experiment
