lib/harness/exp_total_steps.ml: Array Baselines Experiment List Renaming Sim Stats Sweep Table
