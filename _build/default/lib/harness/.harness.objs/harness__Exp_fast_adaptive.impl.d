lib/harness/exp_fast_adaptive.ml: Array Experiment Float List Renaming Sim Stats Sweep Table
