lib/harness/exp_batch_survivors.mli: Experiment
