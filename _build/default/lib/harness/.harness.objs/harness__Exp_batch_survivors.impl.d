lib/harness/exp_batch_survivors.ml: Array Experiment Float List Printf Renaming Sim Sweep Table
