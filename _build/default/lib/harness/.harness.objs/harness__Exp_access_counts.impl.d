lib/harness/exp_access_counts.ml: Array Experiment Hashtbl List Renaming Sim Stats Sweep Table
