lib/harness/registry.mli: Experiment
