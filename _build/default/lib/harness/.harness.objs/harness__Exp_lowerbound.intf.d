lib/harness/exp_lowerbound.mli: Experiment
