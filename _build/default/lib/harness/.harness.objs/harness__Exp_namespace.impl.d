lib/harness/exp_namespace.ml: Array Experiment Printf Renaming Sim Stats Sweep Table
