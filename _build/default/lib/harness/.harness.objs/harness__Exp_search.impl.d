lib/harness/exp_search.ml: Baselines Experiment Printf Renaming Sim Sweep Table
