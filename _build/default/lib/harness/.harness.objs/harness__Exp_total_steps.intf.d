lib/harness/exp_total_steps.mli: Experiment
