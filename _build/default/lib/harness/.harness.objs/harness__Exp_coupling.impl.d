lib/harness/exp_coupling.ml: Array Experiment Float List Lowerbound Printf Prng Sweep Table
