lib/harness/exp_fast_adaptive.mli: Experiment
