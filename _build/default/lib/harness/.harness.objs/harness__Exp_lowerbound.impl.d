lib/harness/exp_lowerbound.ml: Array Experiment List Lowerbound Printf Prng Renaming Stats Sweep Table
