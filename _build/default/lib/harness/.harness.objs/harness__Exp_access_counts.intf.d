lib/harness/exp_access_counts.mli: Experiment
