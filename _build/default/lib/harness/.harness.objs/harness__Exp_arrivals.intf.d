lib/harness/exp_arrivals.mli: Experiment
