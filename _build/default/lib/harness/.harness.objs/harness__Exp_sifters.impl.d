lib/harness/exp_sifters.ml: Array Experiment List Rwtas Stats Sweep Table
