lib/harness/exp_namespace.mli: Experiment
