lib/harness/exp_churn.ml: Experiment Hashtbl List Printf Renaming Sim Sweep Table
