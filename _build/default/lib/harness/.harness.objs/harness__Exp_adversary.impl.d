lib/harness/exp_adversary.ml: Array Experiment List Printf Renaming Sim Stats Sweep Table
