lib/harness/experiment.mli: Table
