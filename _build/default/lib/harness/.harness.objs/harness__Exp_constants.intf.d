lib/harness/exp_constants.mli: Experiment
