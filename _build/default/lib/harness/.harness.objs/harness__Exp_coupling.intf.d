lib/harness/exp_coupling.mli: Experiment
