lib/harness/exp_backup_rate.ml: Experiment List Printf Renaming Sim Sweep Table
