(** Experiment T10 — probe-budget constants ablation (§4).

    The paper's [t0] (53 at [eps = 1]) and [beta] are set for the union
    bounds of Lemma 4.2, not for practice.  This ablation varies [t0] and
    [beta] at fixed [n], reporting worst steps, total work, batch-0
    survivors and backup entries; a "no batching" row (uniform probing
    over the same [m] locations) isolates what the batch structure itself
    buys. *)

val exp : Experiment.t
