(** Experiment T9 — the namespace-slack trade-off (§4 ablation).

    ReBatching's probe budget for batch 0 is
    [t0 = ceil (17 ln (8e/eps) / eps)]: shrinking the namespace slack
    [eps] inflates the constant in front of the step complexity (and the
    total work), while the asymptotic shape stays [log log n + O(1)].
    This sweep reports, for each [eps], the namespace size [m/n], the
    paper's [t0], the measured worst steps and normalized total work, and
    backup entries (expected 0 throughout). *)

val exp : Experiment.t
