(** Experiment T18 — namespace utilization and name placement (extension).

    Where in the `(1+eps)n` namespace do the names actually land?  The §4
    analysis implies almost everyone is served by batch 0 (whose size is
    [eps n]) and the later batches serve doubly-exponentially fewer
    processes; and within batch 0, placement should be uniform (probes
    are uniform and the batch is only partially filled).  This experiment
    reports the per-batch share of assigned names across load factors,
    and chi-square-tests the uniformity of batch-0 placement — a
    distributional check the mean-based tables cannot provide. *)

val exp : Experiment.t
