(** Experiment T2 — total step complexity vs n (Theorem 4.1).

    Reports total probes divided by [n] for ReBatching (paper and tuned
    constants) and the baselines.  The claim: ReBatching's total work is
    [O(n)], i.e. the normalized column is flat in [n] (its level is set by
    the batch-0 budget [t0]). *)

val exp : Experiment.t
