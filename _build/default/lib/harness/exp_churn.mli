(** Experiment T11 — long-lived renaming under churn (extension; cf.
    the long-lived renaming literature the paper cites as [16, 20]).

    [n] concurrent workers each acquire a name, "work", release it and
    repeat for [R] rounds, so the total number of acquisitions [n * R]
    dwarfs the namespace [m ~ 2n].  Claims checked: every instantaneous
    set of holders has distinct names (asserted through the event
    stream), the largest name ever used stays within the one-shot
    namespace bound no matter how many rounds run, and the per-acquisition
    step cost does not degrade with rounds (name reuse does not
    accumulate contention). *)

val exp : Experiment.t
