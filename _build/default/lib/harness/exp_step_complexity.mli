(** Experiment T1 — individual step complexity vs n (Theorem 4.1).

    Sweeps [n] geometrically and reports the worst per-process probe
    count for ReBatching (paper constants and a tuned probe budget)
    against the uniform-probing and cyclic-scan baselines, with
    [log log n] / [log n] reference columns and model fits.  The paper's
    claim: ReBatching's curve is [log log n + O(1)] while uniform probing
    pays [Theta(log n)]. *)

val exp : Experiment.t
