(** Experiment F2 — survival time of the layered execution (Theorem 6.1).

    Sweeps [n] and reports how many layers the marked processes survive
    in the §6 construction (mean and max over trials) against the Final
    Argument's predicted layer count and a [log log n] fit.  Theorem 6.1:
    with constant probability some process is still unnamed after
    [Omega(log log n)] layers, i.e. the measured survival must grow with
    that shape — matching the upper bounds and making the
    [Theta(log log n)] story tight. *)

val exp : Experiment.t
