(** Experiment F1 — the coupling gadget, numerically (Lemmas 6.4–6.6).

    Three checks:
    + Lemma 6.5's CDF inequality [P_lambda(n+1) <= P_gamma(n)] over a
      grid of rates and counts (violations expected: 0);
    + the realized coupling: sampled pairs [(Z, Y)] always satisfy
      [Y <= max (0, Z-1)], with [E Y] close to [gamma];
    + Lemma 6.6's rate recursion against the simulated marking dynamics:
      each layer's realized total rate must be at least the bound
      computed from the previous layer's. *)

val exp : Experiment.t
