(** Experiment T8 — crash-failure tolerance (§2).

    The model allows any number of crash failures; the safety property
    (unique names) and the progress property (every surviving process
    terminates) must survive arbitrary crashes.  This experiment sweeps
    the crashed fraction from 0 to 0.9 for ReBatching and
    AdaptiveReBatching under a crash-injecting greedy adversary, checking
    uniqueness every trial and reporting survivor step costs (crashed
    probes still count as contention). *)

val exp : Experiment.t
