(** Experiment T12 — the "with high probability" claims, quantitatively.

    Theorem 4.1 is a tail statement: the probability that any process
    exceeds [log log n + O(1)] steps is [<= 1/n^c].  Mean-based tables
    (T1) cannot see that, so this experiment runs many independent
    executions at a fixed [n], pools all per-process step counts, and
    reports the empirical complementary CDF at thresholds aligned with
    the batch structure, next to Lemma 4.2's per-batch survivor
    fractions [~ 2^-(2^i)] — the doubly-exponential tail decay that
    drives the whole upper bound.  Percentile-bootstrap confidence
    intervals (no normality assumption) are attached to the extreme
    quantiles. *)

val exp : Experiment.t
