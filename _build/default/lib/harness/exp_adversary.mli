(** Experiment T7 — adversary ablation (§1/§2).

    Runs ReBatching under every built-in scheduling strategy — random,
    round-robin, oblivious layered, greedy-collision (adaptive/strong),
    solo-sequential — at fixed [n] and reports worst and average steps.
    The paper's bounds are adversary-independent, so the claim under test
    is that no strategy pushes the step complexity out of the
    [log log n + O(1)] band (uniqueness is asserted throughout). *)

val exp : Experiment.t
