(** Experiment T3 — batch survivor counts vs the Lemma 4.2 bound.

    Instruments a ReBatching execution at fixed [n] and counts, for each
    batch [i], the number of processes [n_{i+1}] that exhausted the batch
    without a name.  Lemma 4.2 bounds these w.h.p. by
    [n*_i = n / 2^(2^i + i)] (middle batches; we display the bound with
    the paper's delta set to 0, which only weakens it) and
    [n*_kappa = log^2 n].  Reported for both the paper probe budget
    (where survivor counts are minuscule) and the tuned budget [t0 = 3]
    (where the doubly-exponential decay across batches is visible). *)

val exp : Experiment.t
