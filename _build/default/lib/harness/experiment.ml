type ctx = {
  seed : int;
  trials : int;
  scale : float;
  emit_table : title:string -> Table.t -> unit;
  log : string -> unit;
}

type t = { id : string; title : string; claim : string; run : ctx -> unit }

let default_ctx ?(seed = 1) ?(trials = 5) ?(scale = 1.0) () =
  {
    seed;
    trials;
    scale;
    emit_table =
      (fun ~title table ->
        print_newline ();
        print_endline title;
        print_string (Table.render table));
    log = print_endline;
  }
