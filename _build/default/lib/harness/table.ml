type align = Left | Right

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : string array list;  (* reversed *)
  mutable row_count : int;
}

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  {
    headers = Array.of_list (List.map fst columns);
    aligns = Array.of_list (List.map snd columns);
    rows = [];
    row_count = 0;
  }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows;
  t.row_count <- t.row_count + 1

let row_count t = t.row_count
let column_count t = Array.length t.headers
let rows_in_order t = List.rev t.rows

let widths t =
  let w = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> if String.length cell > w.(i) then w.(i) <- String.length cell) row)
    t.rows;
  w

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let line row =
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad t.aligns.(i) w.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  line t.headers;
  Array.iteri
    (fun i width ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make width '-');
      ignore i)
    w;
  Buffer.add_char buf '\n';
  List.iter line (rows_in_order t);
  Buffer.contents buf

let render_markdown t =
  let buf = Buffer.create 1024 in
  let line row =
    Buffer.add_string buf "| ";
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf cell)
      row;
    Buffer.add_string buf " |\n"
  in
  line t.headers;
  Buffer.add_string buf "|";
  Array.iter
    (fun a ->
      Buffer.add_string buf (match a with Left -> " --- |" | Right -> " ---: |"))
    t.aligns;
  Buffer.add_char buf '\n';
  List.iter line (rows_in_order t);
  Buffer.contents buf

let csv_escape cell =
  let needs_quotes =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
  in
  if not needs_quotes then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 1024 in
  let line row =
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (csv_escape cell))
      row;
    Buffer.add_char buf '\n'
  in
  line t.headers;
  List.iter line (rows_in_order t);
  Buffer.contents buf

let cell_int = string_of_int

let cell_float ?(decimals = 2) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let cell_ratio a b = if b = 0. then "-" else Printf.sprintf "%.3f" (a /. b)
