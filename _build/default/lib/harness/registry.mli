(** The experiment registry: every table/figure of DESIGN.md §4. *)

val all : Experiment.t list
(** In presentation order: t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, f1,
    f2. *)

val find : string -> Experiment.t option
(** Look up by id (case-insensitive). *)

val ids : unit -> string list
