(** Experiment descriptors.

    Each table/figure of DESIGN.md §4 is one value of type {!t}; the
    registry ({!Registry.all}) collects them, and both the CLI
    ([bin/repro_cli]) and the bench harness ([bench/main]) drive
    experiments exclusively through this interface. *)

type ctx = {
  seed : int;  (** base seed; trial [i] uses [seed + i] *)
  trials : int;  (** repetitions per measured point *)
  scale : float;
      (** multiplier on the experiment's default problem sizes; [1.0] for
          the published defaults, smaller for quick runs *)
  emit_table : title:string -> Table.t -> unit;
      (** sink for finished tables (prints, and optionally saves CSV) *)
  log : string -> unit;  (** free-form progress / fit lines *)
}

type t = {
  id : string;  (** short id used on the CLI, e.g. "t1" *)
  title : string;
  claim : string;  (** the paper claim being checked, with its reference *)
  run : ctx -> unit;
}

val default_ctx : ?seed:int -> ?trials:int -> ?scale:float -> unit -> ctx
(** A context that prints tables and log lines to stdout.  Defaults:
    [seed = 1], [trials = 5], [scale = 1.0]. *)
