(** Experiment T17 — sifter cascades and the weak/strong adversary gap
    (the paper's references [3, 22]).

    The paper's §2 discussion assumes hardware TAS and cites read/write
    constructions that work against a {i weak} adversary; their engine is
    the sifter.  This experiment reproduces both sides of that context:
    under an oblivious scheduler, survivor counts collapse as
    [k -> ~2 sqrt k] per level, reaching O(1) in [Theta(log log n)]
    levels; under the level-ordered strong-adversary schedule
    ({!Rwtas.Anti_sifter}), {i nobody} is ever sifted out.  Together the
    two columns explain why the paper's strong-adversary O(log log n)
    renaming needs TAS in hardware. *)

val exp : Experiment.t
