(** Experiment T15 — per-object access counts (paper footnote 1).

    Footnote 1 of the paper justifies substituting hardware TAS with
    leader-election implementations by noting that {i "each TAS is
    accessed by O(log k) processes in our algorithm, w.h.p."} — the
    property that keeps the read-write simulation overhead to an
    [O(log log k)] factor.  This experiment measures exactly that: over a
    sweep of [k], the maximum number of distinct processes touching any
    single TAS object, for ReBatching and both adaptive algorithms,
    against a [log2 k] reference column. *)

val exp : Experiment.t
