(** Experiment T6 — FastAdaptiveReBatching total work (Theorem 5.2).

    Sweeps [k] and compares total steps per process between
    FastAdaptiveReBatching (claimed [O(k log log k)] total, i.e. a
    [log log k]-shaped normalized column) and AdaptiveReBatching (whose
    total is [Theta(k (log log k)^2)]), along with the [O(k)] name
    bound. *)

val exp : Experiment.t
