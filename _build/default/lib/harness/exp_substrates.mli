(** Experiment T16 — cross-substrate agreement (reproduction integrity).

    The same algorithm code runs on the deterministic simulator and on
    real Domain/Atomic shared memory; if the two substrates disagreed on
    probe statistics, the simulator results would not transfer.  This
    experiment runs identical workloads on both and compares total
    probes per process and the largest name (wall-clock is not compared
    — the simulator does not model time).  Agreement is expected within
    sampling noise: the substrates differ only in who wins contended
    cells, which affects probe counts marginally under matched
    contention. *)

val exp : Experiment.t
