(** Result tables: aligned ASCII for the terminal, markdown for
    EXPERIMENTS.md, CSV for downstream plotting.

    Every experiment produces one or more of these; the renderers are the
    only place output formatting lives, so the same table prints
    identically from the CLI, the bench harness and the examples. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] makes an empty table.  @raise Invalid_argument on an
    empty column list. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  @raise Invalid_argument if the cell
    count differs from the column count. *)

val row_count : t -> int
val column_count : t -> int

val render : t -> string
(** Aligned monospace rendering with a header rule. *)

val render_markdown : t -> string
(** GitHub-flavoured markdown table. *)

val to_csv : t -> string
(** RFC-4180-style CSV (quotes doubled, cells with commas/quotes/newlines
    quoted), header row included. *)

(** {1 Cell formatting helpers} *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
(** Default 2 decimals; renders NaN as ["-"]. *)

val cell_ratio : float -> float -> string
(** [cell_ratio a b] is [a/b] with 3 decimals, ["-"] when [b = 0]. *)
