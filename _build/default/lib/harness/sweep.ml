let geometric_sizes ~lo ~hi ~factor =
  if lo < 1 || hi < lo then invalid_arg "Sweep.geometric_sizes: need 1 <= lo <= hi";
  if factor < 2 then invalid_arg "Sweep.geometric_sizes: factor must be >= 2";
  let rec go n acc = if n > hi then List.rev acc else go (n * factor) (n :: acc) in
  go lo []

let scaled scale n = max 1 (int_of_float (Float.round (scale *. float_of_int n)))

let collect_seeds ~seed ~trials f =
  if trials < 1 then invalid_arg "Sweep.collect_seeds: trials must be >= 1";
  List.init trials (fun i -> f (seed + i))

let over_seeds ~seed ~trials f =
  Stats.Summary.of_array (Array.of_list (collect_seeds ~seed ~trials f))

let fit_lines ~models ~sizes ~values =
  List.map
    (fun m ->
      let fit = Stats.Regression.fit_model m ~sizes ~values in
      Printf.sprintf "  fit y = a + b*%-13s  b=%8.3f  a=%8.3f  R^2=%.4f"
        (Stats.Regression.model_name m)
        fit.Stats.Regression.slope fit.Stats.Regression.intercept
        fit.Stats.Regression.r2)
    models
