(** Experiment T5 — AdaptiveReBatching (Theorem 5.1).

    Sweeps the contention [k] (the algorithm never learns [k] or [n]) and
    reports worst per-process steps against the [(log log k)^2] reference
    and the adaptive-doubling baseline (the [O(log^2 k)]-class strategy),
    plus the largest assigned name as a multiple of [k] (claimed O(k),
    concretely <= 4(1+eps)k w.h.p.). *)

val exp : Experiment.t
