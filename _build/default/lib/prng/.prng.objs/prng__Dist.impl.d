lib/prng/dist.ml: Array Float Splitmix
