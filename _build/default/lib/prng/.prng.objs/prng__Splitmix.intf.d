lib/prng/splitmix.mli:
