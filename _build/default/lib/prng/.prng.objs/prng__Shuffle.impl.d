lib/prng/shuffle.ml: Array Hashtbl Splitmix
