lib/prng/shuffle.mli: Splitmix
