(** Random permutations and sampling without replacement.

    The oblivious layered adversary of the lower bound (paper §6) orders
    each layer by an independent uniformly random permutation; this module
    provides that permutation. *)

val shuffle_in_place : Splitmix.t -> 'a array -> unit
(** [shuffle_in_place rng a] permutes [a] uniformly at random
    (Fisher–Yates). *)

val permutation : Splitmix.t -> int -> int array
(** [permutation rng n] is a uniformly random permutation of
    [0 .. n-1]. *)

val sample_without_replacement : Splitmix.t -> int -> int -> int array
(** [sample_without_replacement rng n k] returns [k] distinct values drawn
    uniformly from [0 .. n-1], in random order.
    @raise Invalid_argument if [k < 0] or [k > n].

    Uses Floyd's algorithm, so it is O(k) in expectation and does not
    allocate an array of size [n]. *)

val choose : Splitmix.t -> 'a array -> 'a
(** [choose rng a] is a uniformly random element of [a].
    @raise Invalid_argument if [a] is empty. *)
