(** Probability distributions used by the experiments and the lower-bound
    construction (paper §6).

    The Poisson functions are the heart of the §6 reproduction: the
    layered-execution analysis models per-type process counts as
    independent Poisson variables, and the coupling gadget (Lemmas
    6.4–6.5) needs exact CDF and quantile evaluations to realize the
    monotone coupling [Y = F_gamma^{-1}(U)] with [Z = F_lambda^{-1}(U)]. *)

val log_factorial : int -> float
(** [log_factorial n] is [ln (n!)], exact summation for small [n] and
    Stirling's series beyond.  @raise Invalid_argument on negative [n]. *)

(** {1 Poisson} *)

val poisson_pmf : lambda:float -> int -> float
(** [poisson_pmf ~lambda k] is [P(X = k)] for [X ~ Pois(lambda)].
    Computed in log space, so it does not underflow for moderate
    arguments.  Returns [0.] for negative [k].  [lambda] must be
    non-negative. *)

val poisson_cdf : lambda:float -> int -> float
(** [poisson_cdf ~lambda n] is [P(X <= n)]; the paper's [P_lambda(n)].
    Returns [0.] for negative [n] and [1.] when [lambda = 0.]. *)

val poisson_quantile : lambda:float -> float -> int
(** [poisson_quantile ~lambda u] is the generalized inverse CDF: the
    smallest [k] with [P(X <= k) >= u], for [u] in [0, 1).  This is the
    function used for monotone coupling of two Poisson variables. *)

val poisson_sample : Splitmix.t -> lambda:float -> int
(** [poisson_sample rng ~lambda] draws [X ~ Pois(lambda)] exactly.  Uses
    inverse-transform sampling for small rates and the additivity
    [Pois(a+b) = Pois(a) + Pois(b)] to split large rates, so the result is
    exact for all [lambda >= 0]. *)

(** {1 Other distributions} *)

val binomial_sample : Splitmix.t -> n:int -> p:float -> int
(** [binomial_sample rng ~n ~p] draws [Binomial(n, p)].  O(n) coin flips;
    intended for test-sized [n]. *)

val geometric_sample : Splitmix.t -> p:float -> int
(** [geometric_sample rng ~p] is the number of failures before the first
    success in Bernoulli([p]) trials (support [0, 1, 2, ...]).
    @raise Invalid_argument unless [0 < p <= 1]. *)

val exponential_sample : Splitmix.t -> rate:float -> float
(** [exponential_sample rng ~rate] draws [Exp(rate)].
    @raise Invalid_argument unless [rate > 0]. *)
